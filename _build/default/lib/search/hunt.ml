open Bagcq_relational
module Containment = Bagcq_reduction.Containment

type strategy = {
  exhaustive_max_size : int;
  sampler : Sampler.config;
}

let default = { exhaustive_max_size = 2; sampler = Sampler.default }

type report = {
  witness : Structure.t option;
  exhaustive_complete : bool;
  tested_random : int;
}

let verified ~small ~big d = Containment.bag_violation ~small ~big d

let counterexample ?(strategy = default) ~small ~big () =
  let schema = Sampler.schema_of_pair small big in
  let exhaustive_feasible size = Dbspace.count_space schema ~size <= Dbspace.max_potential_atoms in
  let exhaustive_witness, exhaustive_complete =
    if strategy.exhaustive_max_size < 1 then (None, false)
    else begin
      let size = ref strategy.exhaustive_max_size in
      while !size >= 1 && not (exhaustive_feasible !size) do
        decr size
      done;
      if !size < 1 then (None, false)
      else
        ( Dbspace.find schema ~max_size:!size (fun d ->
              Containment.bag_violation ~small ~big d),
          !size = strategy.exhaustive_max_size )
    end
  in
  match exhaustive_witness with
  | Some d -> { witness = Some d; exhaustive_complete; tested_random = 0 }
  | None ->
      let outcome = Sampler.hunt_queries ~config:strategy.sampler ~small ~big () in
      let witness =
        match outcome.Sampler.witness with
        | Some d when verified ~small ~big d -> Some d
        | _ -> None
      in
      { witness; exhaustive_complete; tested_random = outcome.Sampler.tested }
