open Bagcq_relational
open Bagcq_cq
module Nat = Bagcq_bignum.Nat
module Eval = Bagcq_hom.Eval

let log_nat n =
  (* log of a bignum via its decimal representation: exact enough for an
     estimator *)
  let s = Nat.to_string n in
  let head = String.sub s 0 (Stdlib.min 15 (String.length s)) in
  log (float_of_string head) +. (float_of_int (String.length s - String.length head) *. log 10.)

let log_ratio ~small ~big d =
  let cs = Eval.count small d and cb = Eval.count big d in
  if Nat.compare cs Nat.two >= 0 && Nat.compare cb Nat.two >= 0 then
    Some (log_nat cs /. log_nat cb)
  else None

type estimate = {
  lower_bound : float;
  witness : Structure.t option;
  usable : int;
}

let estimate ?(config = Sampler.default) ~small ~big () =
  if Query.has_neqs small || Query.has_neqs big then
    invalid_arg "Domination.estimate: inequality-free CQs only";
  let schema = Sampler.schema_of_pair small big in
  let rng = Random.State.make [| config.Sampler.seed |] in
  let sizes = Array.of_list config.Sampler.sizes in
  let densities = Array.of_list config.Sampler.densities in
  let best = ref 0.0 and witness = ref None and usable = ref 0 in
  for i = 0 to config.Sampler.samples - 1 do
    let size = sizes.(i mod Array.length sizes) in
    let density = densities.(i / Array.length sizes mod Array.length densities) in
    let d = Generate.random ~density rng schema ~size in
    match log_ratio ~small ~big d with
    | Some r ->
        incr usable;
        if r > !best then begin
          best := r;
          witness := Some d
        end
    | None -> ()
  done;
  (* powering the best witness leaves the ratio invariant in the limit and
     sharpens it in practice (constants wash out) *)
  (match !witness with
  | Some d ->
      List.iter
        (fun k ->
          match log_ratio ~small ~big (Ops.power d k) with
          | Some r when r > !best -> best := r
          | _ -> ())
        [ 2; 3 ]
  | None -> ());
  { lower_bound = !best; witness = !witness; usable = !usable }

let refutes_containment e = e.lower_bound > 1.0
