lib/search/domination.ml: Array Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_relational Generate List Ops Query Random Sampler Stdlib String Structure
