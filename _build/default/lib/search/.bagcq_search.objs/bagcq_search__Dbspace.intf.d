lib/search/dbspace.mli: Bagcq_relational Schema Structure Symbol Tuple
