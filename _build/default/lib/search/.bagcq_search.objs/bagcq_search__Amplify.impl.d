lib/search/amplify.ml: Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_relational Nat Ops Query
