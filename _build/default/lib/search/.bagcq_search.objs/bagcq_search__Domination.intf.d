lib/search/domination.mli: Bagcq_cq Bagcq_relational Query Sampler Structure
