lib/search/amplify.mli: Bagcq_bignum Bagcq_cq Bagcq_relational Nat Query Structure
