lib/search/sampler.mli: Bagcq_cq Bagcq_relational Pquery Query Schema Structure
