lib/search/dbspace.ml: Array Bagcq_relational Generate List Printf Schema Structure Symbol Tuple Value
