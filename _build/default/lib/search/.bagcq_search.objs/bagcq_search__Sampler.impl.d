lib/search/sampler.ml: Array Bagcq_cq Bagcq_hom Bagcq_reduction Bagcq_relational Generate List Pquery Query Random Schema Structure
