lib/search/hunt.mli: Bagcq_cq Bagcq_relational Query Sampler Structure
