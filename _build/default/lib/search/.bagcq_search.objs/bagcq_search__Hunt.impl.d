lib/search/hunt.ml: Bagcq_reduction Bagcq_relational Dbspace Sampler Structure
