(** Empirical estimation of the homomorphism domination exponent
    (Kopparty–Rossman [12], the paper's second positive line of attack).

    For inequality-free CQs [ψ_s, ψ_b], the domination exponent is the
    least [θ] with [ψ_s(D) ≤ ψ_b(D)^θ] for all (suitable) [D]; bag
    containment holds iff the exponent is ≤ 1 {e and} the constant is
    right, so observing a database with [log ψ_s(D) / log ψ_b(D) > 1] is a
    containment refutation, and the supremum over sampled databases is a
    lower bound on the exponent.

    (The exponent is only defined for structures admitting at least two
    homomorphisms of each query — the footnote to Theorem 1 — hence the
    [counts ≥ 2] guard.) *)

open Bagcq_relational
open Bagcq_cq

val log_ratio : small:Query.t -> big:Query.t -> Structure.t -> float option
(** [log ψ_s(D) / log ψ_b(D)], when both counts are ≥ 2. *)

type estimate = {
  lower_bound : float;  (** best observed ratio; 0.0 when nothing qualified *)
  witness : Structure.t option;  (** the database achieving it *)
  usable : int;  (** sampled databases with both counts ≥ 2 *)
}

val estimate :
  ?config:Sampler.config -> small:Query.t -> big:Query.t -> unit -> estimate
(** Supremum of {!log_ratio} over sampled databases plus the product powers
    of the best sample (the exponent is product-invariant, so powering
    sharpens the constant away). *)

val refutes_containment : estimate -> bool
(** The observed exponent strictly exceeds 1 — bag containment is
    impossible. *)
