let all_tuples dom k =
  let rec go k =
    if k = 0 then [ [] ]
    else begin
      let rest = go (k - 1) in
      List.concat_map (fun v -> List.map (fun tup -> v :: tup) rest) dom
    end
  in
  go k

let random ?(density = 0.3) ?(declare_constants = true) rng schema ~size =
  if size < 1 then invalid_arg "Generate.random: size must be >= 1";
  let dom = List.init size (fun i -> Value.int (i + 1)) in
  let dom_arr = Array.of_list dom in
  let base = Structure.empty schema in
  let with_atoms =
    List.fold_left
      (fun acc sym ->
        List.fold_left
          (fun acc tup ->
            if Random.State.float rng 1.0 < density then
              Structure.add_atom acc sym (Tuple.make tup)
            else acc)
          acc
          (all_tuples dom (Symbol.arity sym)))
      base (Schema.symbols schema)
  in
  if not declare_constants then with_atoms
  else
    List.fold_left
      (fun acc c ->
        Structure.bind_constant acc c dom_arr.(Random.State.int rng size))
      with_atoms (Schema.constants schema)

let random_nontrivial ?density rng schema ~size =
  let schema =
    Schema.add_constant (Schema.add_constant schema Consts.heart) Consts.spade
  in
  let keep_other_constants c =
    not (String.equal c Consts.heart || String.equal c Consts.spade)
  in
  let d = random ?density ~declare_constants:false rng schema ~size in
  let d =
    List.fold_left
      (fun acc c ->
        if keep_other_constants c then
          Structure.bind_constant acc c (Value.int (1 + Random.State.int rng size))
        else acc)
      d (Schema.constants schema)
  in
  let d = Structure.bind_constant d Consts.heart Consts.heart_v in
  Structure.bind_constant d Consts.spade Consts.spade_v
