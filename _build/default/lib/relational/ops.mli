(** The structure operations of Section 5.1, plus renaming helpers.

    For CQs without inequalities, Lemma 22 gives the counting laws
    [φ(blowup(D,k)) = k^{|Var(φ)|}·φ(D)] and [φ(D^{×k}) = φ(D)^k]; both are
    exercised by property tests.  Constants are supported: in a product the
    interpretation of [c] is the pair of interpretations (so that
    [Hom(φ, D₁×D₂) ≅ Hom(φ,D₁) × Hom(φ,D₂)] still holds), and in a blow-up
    it is copy 1 (so the count law holds with [j] the number of genuine
    variables). *)

val product : Structure.t -> Structure.t -> Structure.t
(** [product d1 d2] — vertices are pairs, [R(ū,v̄)] holds iff it holds
    component-wise.  A constant is interpreted only when both factors
    interpret it. *)

val power : Structure.t -> int -> Structure.t
(** [power d k] is [d ×···× d] ([k] factors, left-associated).
    Raises [Invalid_argument] if [k < 1]. *)

val blowup : Structure.t -> int -> Structure.t
(** [blowup d k] replaces every vertex by [k] indistinguishable copies.
    Raises [Invalid_argument] if [k < 1]. *)

val tag : Structure.t -> int -> Structure.t
(** [tag d i] renames every element [v] to [Copy(v,i)] — used to make the
    domains of two structures disjoint before a union. *)

val disjoint_union : Structure.t -> Structure.t -> Structure.t
(** Union after tagging the two sides apart (tags 1 and 2).  Constants
    bound on either side follow their tagged interpretation; a constant
    bound on both sides raises [Invalid_argument] (tag collision). *)
