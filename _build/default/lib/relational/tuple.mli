(** Tuples of domain elements — the rows of a relation. *)

type t = Value.t array

val make : Value.t list -> t
val of_array : Value.t array -> t
val arity : t -> int
val get : t -> int -> Value.t

val compare : t -> t -> int
val equal : t -> t -> bool

val map : (Value.t -> Value.t) -> t -> t
val to_list : t -> Value.t list
val mem_value : Value.t -> t -> bool

val rotate : t -> int -> t
(** [rotate t k] is the cyclic k-shift of [t] (Definition 6): element [i]
    moves to position [(i + k) mod n].  [rotate t 0 = t]. *)

val is_constant_tuple : t -> bool
(** True when all components are equal — the shape [\[s, s̄\]] used for
    homogeneous cycliques (Definition 7). *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
