let heart = "heart"
let spade = "spade"
let heart_v = Value.sym heart
let spade_v = Value.sym spade
