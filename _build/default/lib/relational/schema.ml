module StringSet = Set.Make (String)
module StringMap = Map.Make (String)

type t = { symbols : Symbol.t StringMap.t; constants : StringSet.t }

let empty = { symbols = StringMap.empty; constants = StringSet.empty }

let add_symbol sch sym =
  match StringMap.find_opt (Symbol.name sym) sch.symbols with
  | Some existing when not (Symbol.equal existing sym) ->
      invalid_arg
        (Printf.sprintf "Schema.add_symbol: %s already present with arity %d"
           (Symbol.name sym) (Symbol.arity existing))
  | _ -> { sch with symbols = StringMap.add (Symbol.name sym) sym sch.symbols }

let add_constant sch c = { sch with constants = StringSet.add c sch.constants }

let make ?(constants = []) syms =
  let sch = List.fold_left add_symbol empty syms in
  List.fold_left add_constant sch constants

let symbols sch = StringMap.bindings sch.symbols |> List.map snd
let constants sch = StringSet.elements sch.constants
let mem_symbol sch sym =
  match StringMap.find_opt (Symbol.name sym) sch.symbols with
  | Some s -> Symbol.equal s sym
  | None -> false

let mem_symbol_name sch name = StringMap.mem name sch.symbols
let find_symbol sch name = StringMap.find_opt name sch.symbols
let mem_constant sch c = StringSet.mem c sch.constants

let union a b =
  let sch = StringMap.fold (fun _ sym acc -> add_symbol acc sym) b.symbols a in
  { sch with constants = StringSet.union sch.constants b.constants }

let disjoint a b =
  StringMap.for_all (fun name _ -> not (StringMap.mem name b.symbols)) a.symbols

let restrict sch ~keep =
  { sch with symbols = StringMap.filter (fun _ s -> keep s) sch.symbols }

let equal a b =
  StringMap.equal Symbol.equal a.symbols b.symbols
  && StringSet.equal a.constants b.constants

let pp fmt sch =
  Format.fprintf fmt "{%a | %a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Symbol.pp)
    (symbols sch)
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       Format.pp_print_string)
    (constants sch)
