(** Random structure generation for property tests and counterexample
    hunting.  All generation is driven by an explicit [Random.State.t] so
    test failures reproduce. *)

val random :
  ?density:float ->
  ?declare_constants:bool ->
  Random.State.t ->
  Schema.t ->
  size:int ->
  Structure.t
(** [random rng schema ~size] draws a structure whose anonymous domain is
    [{#1 … #size}].  Each potential atom [R(v̄)] is included independently
    with probability [density] (default [0.3]).  When [declare_constants]
    is set (default [true]), every schema constant is bound to a uniformly
    chosen domain element — so the result is usually "seriously incorrect"
    in the sense of Definition 13, which is exactly what the punishment
    lemmas need to be tested against. *)

val random_nontrivial :
  ?density:float -> Random.State.t -> Schema.t -> size:int -> Structure.t
(** Like {!random} but ♥ and ♠ are bound to two distinct fresh elements, so
    the result is non-trivial. *)

val all_tuples : Value.t list -> int -> Value.t list list
(** [all_tuples dom k] — every [k]-tuple over [dom], in lexicographic
    order.  Exposed for exhaustive database enumeration. *)
