(** Relation symbols: a name paired with an arity.

    The paper's schemas are built from binary symbols ([S_m], [R_d], [X],
    [E]), unary ones ([A], [B], [U]) and the p-ary [R] of the [CYCLIQ]
    construction (Section 3.1), so arities are arbitrary. *)

type t = private { name : string; arity : int }

val make : string -> int -> t
(** Raises [Invalid_argument] if the name is empty or the arity negative. *)

val name : t -> string
val arity : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
