(** The two distinguished constants of the paper, written ♥ and ♠ there.

    A database is {e non-trivial} when it interprets both and their
    interpretations differ (Section 1.2). *)

val heart : string
val spade : string

val heart_v : Value.t
val spade_v : Value.t
(** Their canonical interpretations, [Value.sym heart] and
    [Value.sym spade]. *)
