type t =
  | Sym of string
  | Int of int
  | Pair of t * t
  | Copy of t * int

let sym s = Sym s
let int i = Int i
let pair a b = Pair (a, b)
let copy v i = Copy (v, i)
let of_var x = Sym ("$" ^ x)

let rec compare a b =
  match (a, b) with
  | Sym x, Sym y -> String.compare x y
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Pair (x1, x2), Pair (y1, y2) -> (
      match compare x1 y1 with 0 -> compare x2 y2 | c -> c)
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | Copy (x, i), Copy (y, j) -> (
      match compare x y with 0 -> Stdlib.compare i j | c -> c)

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let rec pp fmt = function
  | Sym s -> Format.pp_print_string fmt s
  | Int i -> Format.fprintf fmt "#%d" i
  | Pair (a, b) -> Format.fprintf fmt "(%a,%a)" pp a pp b
  | Copy (v, i) -> Format.fprintf fmt "%a@%d" pp v i

let to_string v = Format.asprintf "%a" pp v

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ordered)
module Set = Set.Make (Ordered)
