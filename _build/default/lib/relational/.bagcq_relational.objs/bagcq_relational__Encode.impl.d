lib/relational/encode.ml: Buffer List Printf Schema String Structure Symbol Tuple Value
