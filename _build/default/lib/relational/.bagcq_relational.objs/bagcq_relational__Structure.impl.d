lib/relational/structure.ml: Array Consts Format List Map Option Printf Schema String Symbol Tuple Value
