lib/relational/schema.mli: Format Symbol
