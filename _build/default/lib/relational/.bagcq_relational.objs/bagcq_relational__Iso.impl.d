lib/relational/iso.ml: Array Hashtbl List Map Option Schema Stdlib String Structure Symbol Tuple Value
