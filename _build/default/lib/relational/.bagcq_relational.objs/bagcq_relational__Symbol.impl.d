lib/relational/symbol.ml: Format Hashtbl Map Set Stdlib String
