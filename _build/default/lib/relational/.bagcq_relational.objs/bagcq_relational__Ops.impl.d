lib/relational/ops.ml: Array List Schema Structure Tuple Value
