lib/relational/consts.ml: Value
