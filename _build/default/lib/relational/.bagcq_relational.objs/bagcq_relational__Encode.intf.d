lib/relational/encode.mli: Structure Value
