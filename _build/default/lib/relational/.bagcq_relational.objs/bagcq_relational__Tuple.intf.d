lib/relational/tuple.mli: Format Map Set Value
