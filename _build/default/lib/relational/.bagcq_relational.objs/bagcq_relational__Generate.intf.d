lib/relational/generate.mli: Random Schema Structure Value
