lib/relational/structure.mli: Format Schema Symbol Tuple Value
