lib/relational/generate.ml: Array Consts List Random Schema String Structure Symbol Tuple Value
