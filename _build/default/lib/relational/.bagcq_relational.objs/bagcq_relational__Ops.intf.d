lib/relational/ops.mli: Structure
