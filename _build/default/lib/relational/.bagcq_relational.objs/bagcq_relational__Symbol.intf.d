lib/relational/symbol.mli: Format Map Set
