lib/relational/iso.mli: Structure Value
