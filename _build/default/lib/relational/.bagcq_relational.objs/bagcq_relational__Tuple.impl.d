lib/relational/tuple.ml: Array Format Map Set Stdlib Value
