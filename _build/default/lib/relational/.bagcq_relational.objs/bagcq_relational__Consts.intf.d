lib/relational/consts.mli: Value
