lib/relational/schema.ml: Format List Map Printf Set String Symbol
