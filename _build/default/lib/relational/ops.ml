let product d1 d2 =
  let schema = Schema.union (Structure.schema d1) (Structure.schema d2) in
  let base = Structure.empty schema in
  let with_atoms =
    List.fold_left
      (fun acc sym ->
        let t1 = Structure.tuples d1 sym and t2 = Structure.tuples d2 sym in
        List.fold_left
          (fun acc a ->
            List.fold_left
              (fun acc b ->
                Structure.add_atom acc sym (Array.map2 (fun x y -> Value.pair x y) a b))
              acc t2)
          acc t1)
      base (Schema.symbols schema)
  in
  List.fold_left
    (fun acc c ->
      match (Structure.interpretation d1 c, Structure.interpretation d2 c) with
      | Some v1, Some v2 -> Structure.bind_constant acc c (Value.pair v1 v2)
      | _ -> acc)
    with_atoms (Schema.constants schema)

let power d k =
  if k < 1 then invalid_arg "Ops.power: k must be >= 1";
  let rec go acc k = if k = 0 then acc else go (product acc d) (k - 1) in
  go d (k - 1)

let blowup d k =
  if k < 1 then invalid_arg "Ops.blowup: k must be >= 1";
  let base = Structure.empty (Structure.schema d) in
  let indices = List.init k (fun i -> i + 1) in
  (* all ways to pick a copy index per tuple position *)
  let rec expand (tup : Tuple.t) i acc =
    if i = Array.length tup then [ Array.of_list (List.rev acc) ]
    else
      List.concat_map (fun ix -> expand tup (i + 1) (Value.copy tup.(i) ix :: acc)) indices
  in
  let with_atoms =
    Structure.fold_atoms
      (fun sym tup acc ->
        List.fold_left (fun acc t -> Structure.add_atom acc sym t) acc (expand tup 0 []))
      d base
  in
  List.fold_left
    (fun acc c ->
      match Structure.interpretation d c with
      | Some v -> Structure.bind_constant acc c (Value.copy v 1)
      | None -> acc)
    with_atoms
    (Schema.constants (Structure.schema d))

let tag d i = Structure.map_values (fun v -> Value.copy v i) d

let disjoint_union d1 d2 = Structure.union (tag d1 1) (tag d2 2)
