(** Relational schemas (signatures): a set of relation symbols plus a set of
    constant names.

    The paper manipulates schemas explicitly: [Σ₀] and [Σ = Σ₀ ∪ {X}]
    (Section 4.3), restriction [D↾Σ₀] (Definition 13), and disjoint unions of
    schemas when multiplier gadgets are composed (Lemma 4, Section 3). *)

type t

val empty : t
val make : ?constants:string list -> Symbol.t list -> t

val add_symbol : t -> Symbol.t -> t
(** Raises [Invalid_argument] when a different symbol with the same name is
    already present. *)

val add_constant : t -> string -> t

val symbols : t -> Symbol.t list
val constants : t -> string list
val mem_symbol : t -> Symbol.t -> bool
val mem_symbol_name : t -> string -> bool
val find_symbol : t -> string -> Symbol.t option
val mem_constant : t -> string -> bool

val union : t -> t -> t
(** Raises [Invalid_argument] when the two schemas disagree on the arity of
    a shared symbol name. *)

val disjoint : t -> t -> bool
(** True when the two schemas share no relation symbol name.  Constants may
    be shared: the paper's gadgets deliberately reuse ♥ and ♠. *)

val restrict : t -> keep:(Symbol.t -> bool) -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
