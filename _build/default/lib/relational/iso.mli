(** Isomorphism of finite structures.

    Used to state rename-invariance precisely: the correctness
    classification of Definition 13 and all counting results are invariant
    under isomorphism, and two CQs are bag-equivalent iff their canonical
    structures are isomorphic (Chaudhuri–Vardi).  An isomorphism must match
    atoms exactly and commute with the constant interpretations. *)

val find : Structure.t -> Structure.t -> (Value.t -> Value.t) option
(** A witnessing bijection on the active domains, if any.  Backtracking
    with degree-profile pruning; intended for the library's small
    structures. *)

val isomorphic : Structure.t -> Structure.t -> bool
