module ProfileMap = Map.Make (struct
  type t = (string * int * int) list (* (symbol, position, count), sorted *)

  let compare = Stdlib.compare
end)

(* occurrence profile of an element: how many times it appears at each
   (relation, position) — an isomorphism invariant used for pruning *)
let profiles d =
  let table = Hashtbl.create 32 in
  Structure.fold_atoms
    (fun sym tup () ->
      Array.iteri
        (fun i v ->
          let key = (v, Symbol.name sym, i) in
          Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key)))
        tup)
    d ();
  let profile v =
    Hashtbl.fold
      (fun (v', sym, i) count acc -> if Value.equal v v' then (sym, i, count) :: acc else acc)
      table []
    |> List.sort Stdlib.compare
  in
  List.map (fun v -> (v, profile v)) (Value.Set.elements (Structure.domain d))

let find d1 d2 =
  let dom1 = Value.Set.elements (Structure.domain d1) in
  let dom2 = Value.Set.elements (Structure.domain d2) in
  let syms1 = Schema.symbols (Structure.schema d1) in
  let syms2 = Schema.symbols (Structure.schema d2) in
  let counts_match =
    List.for_all (fun sym -> Structure.atom_count d1 sym = Structure.atom_count d2 sym) syms1
    && List.for_all (fun sym -> Structure.atom_count d1 sym = Structure.atom_count d2 sym) syms2
  in
  if List.length dom1 <> List.length dom2 || not counts_match then None
  else begin
    let prof1 = profiles d1 and prof2 = profiles d2 in
    (* constants pin parts of the mapping *)
    let consts1 = Schema.constants (Structure.schema d1) in
    let consts2 = Schema.constants (Structure.schema d2) in
    let bound c d = Structure.interpretation d c <> None in
    let shared_ok =
      List.for_all (fun c -> bound c d1 = bound c d2) (consts1 @ consts2)
    in
    if not shared_ok then None
    else begin
      let pinned =
        List.filter_map
          (fun c ->
            match (Structure.interpretation d1 c, Structure.interpretation d2 c) with
            | Some v1, Some v2 -> Some (v1, v2)
            | _ -> None)
          (List.sort_uniq String.compare (consts1 @ consts2))
      in
      let candidates v =
        let p = List.assoc v prof1 in
        List.filter_map (fun (w, q) -> if q = p then Some w else None) prof2
      in
      (* order unpinned elements by candidate-set size *)
      let unpinned =
        List.filter (fun v -> not (List.exists (fun (a, _) -> Value.equal a v) pinned)) dom1
        |> List.sort (fun a b ->
               Stdlib.compare (List.length (candidates a)) (List.length (candidates b)))
      in
      let check_atoms f =
        try
          Structure.fold_atoms
            (fun sym tup () ->
              if not (Structure.mem_atom d2 sym (Tuple.map f tup)) then raise_notrace Exit)
            d1 ();
          true
        with Exit -> false
      in
      let rec backtrack assigned used = function
        | [] ->
            let f v =
              match List.find_opt (fun (a, _) -> Value.equal a v) assigned with
              | Some (_, w) -> w
              | None -> v
            in
            if check_atoms f then Some f else None
        | v :: rest ->
            let rec try_candidates = function
              | [] -> None
              | w :: ws ->
                  if Value.Set.mem w used then try_candidates ws
                  else begin
                    match backtrack ((v, w) :: assigned) (Value.Set.add w used) rest with
                    | Some f -> Some f
                    | None -> try_candidates ws
                  end
            in
            try_candidates (candidates v)
      in
      (* pinned pairs must be consistent (two constants interpreted alike
         on one side must be alike on the other) and injective *)
      let consistent =
        List.for_all
          (fun (v, w) ->
            List.for_all
              (fun (v', w') -> not (Value.equal v v') || Value.equal w w')
              pinned)
          pinned
      in
      let distinct_pinned =
        List.sort_uniq (fun (a, _) (b, _) -> Value.compare a b) pinned
      in
      let pinned_used =
        List.fold_left (fun acc (_, w) -> Value.Set.add w acc) Value.Set.empty distinct_pinned
      in
      if (not consistent) || Value.Set.cardinal pinned_used <> List.length distinct_pinned
      then None
      else backtrack distinct_pinned pinned_used unpinned
    end
  end

let isomorphic d1 d2 = find d1 d2 <> None
