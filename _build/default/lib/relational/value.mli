(** Elements of the active domain of a structure.

    Four constructors cover everything the paper builds:
    - [Sym] — a named element; a constant [a] of the signature is by default
      interpreted as the element [Sym "a"], and the canonical structure of a
      query freezes a variable [x] as [Sym "$x"] (the ["$"] prefix keeps
      frozen variables from colliding with constants);
    - [Int] — an anonymous vertex, used for generated databases and for the
      fresh [X]-targets that encode a valuation (Definition 14);
    - [Pair] — a vertex of a product [D₁ × D₂] (Section 5.1);
    - [Copy] — a vertex [(s, i)] of [blowup(D, k)] (Section 5.1). *)

type t =
  | Sym of string
  | Int of int
  | Pair of t * t
  | Copy of t * int

val sym : string -> t
val int : int -> t
val pair : t -> t -> t
val copy : t -> int -> t

val of_var : string -> t
(** [of_var x] is the frozen-variable element [Sym ("$" ^ x)]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
