type t = Value.t array

let make l = Array.of_list l
let of_array a = Array.copy a
let arity = Array.length
let get (t : t) i = t.(i)

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else begin
        match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
      end
    in
    go 0
  end

let equal a b = compare a b = 0
let map f (t : t) = Array.map f t
let to_list = Array.to_list
let mem_value v (t : t) = Array.exists (Value.equal v) t

let rotate (t : t) k =
  let n = Array.length t in
  if n = 0 then [||]
  else begin
    let k = ((k mod n) + n) mod n in
    Array.init n (fun i -> t.((i - k + n) mod n))
  end

let is_constant_tuple (t : t) =
  Array.length t = 0 || Array.for_all (Value.equal t.(0)) t

let pp fmt (t : t) =
  Format.fprintf fmt "(%a)" (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_char f ',') Value.pp) (to_list t)

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
