type t = { name : string; arity : int }

let make name arity =
  if String.length name = 0 then invalid_arg "Symbol.make: empty name";
  if arity < 0 then invalid_arg "Symbol.make: negative arity";
  { name; arity }

let name s = s.name
let arity s = s.arity

let compare a b =
  match String.compare a.name b.name with 0 -> Stdlib.compare a.arity b.arity | c -> c

let equal a b = compare a b = 0
let hash = Hashtbl.hash
let pp fmt s = Format.fprintf fmt "%s/%d" s.name s.arity

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ordered)
module Set = Set.Make (Ordered)
