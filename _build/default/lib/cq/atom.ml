open Bagcq_relational

type t = { sym : Symbol.t; args : Term.t array }

let of_array sym args =
  if Array.length args <> Symbol.arity sym then
    invalid_arg
      (Printf.sprintf "Atom: %s expects %d arguments, got %d" (Symbol.name sym)
         (Symbol.arity sym) (Array.length args));
  { sym; args }

let make sym args = of_array sym (Array.of_list args)
let sym a = a.sym
let args a = a.args
let arg a i = a.args.(i)

let vars a =
  Array.fold_left
    (fun acc t -> match t with Term.Var x when not (List.mem x acc) -> x :: acc | _ -> acc)
    [] a.args
  |> List.rev

let constants a =
  Array.fold_left
    (fun acc t -> match t with Term.Cst c when not (List.mem c acc) -> c :: acc | _ -> acc)
    [] a.args
  |> List.rev

let rename f a = { a with args = Array.map (Term.rename f) a.args }
let substitute f a = { a with args = Array.map (Term.substitute f) a.args }

let compare a b =
  match Symbol.compare a.sym b.sym with
  | 0 ->
      let la = Array.length a.args and lb = Array.length b.args in
      if la <> lb then Stdlib.compare la lb
      else begin
        let rec go i =
          if i = la then 0
          else begin
            match Term.compare a.args.(i) b.args.(i) with 0 -> go (i + 1) | c -> c
          end
        in
        go 0
      end
  | c -> c

let equal a b = compare a b = 0

let pp fmt a =
  Format.fprintf fmt "%s(%a)" (Symbol.name a.sym)
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_char f ',') Term.pp)
    (Array.to_list a.args)

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
