type t =
  | Var of string
  | Cst of string

let var x = Var x
let cst c = Cst c
let is_var = function Var _ -> true | Cst _ -> false
let is_cst = function Cst _ -> true | Var _ -> false

let compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1
  | Cst x, Cst y -> String.compare x y

let equal a b = compare a b = 0

let rename f = function Var x -> Var (f x) | Cst _ as t -> t

let substitute f = function
  | Var x as t -> ( match f x with Some t' -> t' | None -> t)
  | Cst _ as t -> t

let pp fmt = function
  | Var x -> Format.pp_print_string fmt x
  | Cst c -> Format.fprintf fmt "'%s'" c

let to_string t = Format.asprintf "%a" pp t

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
