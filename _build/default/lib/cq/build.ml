open Bagcq_relational

let v = Term.var
let c = Term.cst
let sym = Symbol.make
let atom = Atom.make
let query ?neqs atoms = Query.make ?neqs atoms

let path e ts =
  if Symbol.arity e <> 2 then invalid_arg "Build.path: binary symbol expected";
  let rec go = function
    | a :: (b :: _ as rest) -> atom e [ a; b ] :: go rest
    | [ _ ] | [] -> []
  in
  match ts with
  | _ :: _ :: _ -> go ts
  | _ -> invalid_arg "Build.path: need at least two terms"

let cycle e ts =
  match ts with
  | [] -> invalid_arg "Build.cycle: empty"
  | [ t ] -> [ atom e [ t; t ] ]
  | first :: _ ->
      let last = List.nth ts (List.length ts - 1) in
      path e ts @ [ atom e [ last; first ] ]

let vars stem n = List.init n (fun i -> Term.var (Printf.sprintf "%s%d" stem (i + 1)))
