(** Relational atoms [R(t₁,…,t_k)]. *)

open Bagcq_relational

type t = private { sym : Symbol.t; args : Term.t array }

val make : Symbol.t -> Term.t list -> t
(** Raises [Invalid_argument] on an arity mismatch. *)

val of_array : Symbol.t -> Term.t array -> t
val sym : t -> Symbol.t
val args : t -> Term.t array
val arg : t -> int -> Term.t

val vars : t -> string list
(** Variables of the atom, each once, in order of first occurrence. *)

val constants : t -> string list

val rename : (string -> string) -> t -> t
val substitute : (string -> Term.t option) -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
