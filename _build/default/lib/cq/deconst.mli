(** Section 2.3: trading constants for free variables.

    For boolean queries [φ_s, φ_b] mentioning a tuple [ā] of constants, let
    [φ_s', φ_b'] be the syntactically same queries with [ā] read as a tuple
    of {e free} variables.  Then [φ_b] contains [φ_s] (bag or set
    semantics) iff [φ_b'] contains [φ_s'] as non-boolean queries — the
    constants' interpretations become the answer tuple.

    This module performs the rewriting; the multiplicity bookkeeping that
    makes the observation checkable per-database lives in
    {!Bagcq_hom.Answers}. *)

type t = {
  query : Query.t;  (** the generalised query — constants replaced by variables *)
  mapping : (string * string) list;
      (** constant name ↦ the fresh variable that replaced it, in sorted
          constant order *)
}

val generalize : ?keep:string list -> Query.t -> t
(** Replace every constant not in [keep] by a fresh variable.  The fresh
    variable for constant [c] is [c] prefixed with ["k$"], guaranteed fresh
    (["$"] cannot occur in source variables). *)

val var_head : t -> Term.t list
(** The fresh variables, as the head of the generalised query. *)

val cst_head : t -> Term.t list
(** The original constants, as the head of the boolean query — projecting
    the boolean query to this head yields a bag concentrated on the tuple
    of interpretations. *)
