type t = {
  query : Query.t;
  mapping : (string * string) list;
}

let fresh_var c = "k$" ^ c

let generalize ?(keep = []) q =
  let targets = List.filter (fun c -> not (List.mem c keep)) (Query.constants q) in
  let mapping = List.map (fun c -> (c, fresh_var c)) targets in
  let subst = function
    | Term.Cst c when List.mem_assoc c mapping -> Term.var (List.assoc c mapping)
    | t -> t
  in
  let atoms =
    List.map
      (fun a -> Atom.of_array (Atom.sym a) (Array.map subst (Atom.args a)))
      (Query.atoms q)
  in
  let neqs = List.map (fun (x, y) -> (subst x, subst y)) (Query.neqs q) in
  { query = Query.make ~neqs atoms; mapping }

let var_head t = List.map (fun (_, v) -> Term.var v) t.mapping
let cst_head t = List.map (fun (c, _) -> Term.cst c) t.mapping
