lib/cq/pquery.mli: Bagcq_bignum Format Nat Query
