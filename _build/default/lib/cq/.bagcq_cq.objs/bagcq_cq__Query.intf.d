lib/cq/query.mli: Atom Bagcq_relational Format Schema Structure Term
