lib/cq/pquery.ml: Bagcq_bignum Format List Nat Query
