lib/cq/ucq.ml: Bagcq_relational Format List Query Schema
