lib/cq/atom.mli: Bagcq_relational Format Set Symbol Term
