lib/cq/build.mli: Atom Bagcq_relational Query Symbol Term
