lib/cq/parse.ml: Atom Bagcq_relational Hashtbl List Printf Query Result String Symbol Term
