lib/cq/deconst.mli: Query Term
