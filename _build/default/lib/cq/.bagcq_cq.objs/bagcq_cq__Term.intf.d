lib/cq/term.mli: Format Map Set
