lib/cq/query.ml: Array Atom Bagcq_relational Format Hashtbl List Printf Schema Set String Structure Symbol Term Value
