lib/cq/build.ml: Atom Bagcq_relational List Printf Query Symbol Term
