lib/cq/deconst.ml: Array Atom List Query Term
