lib/cq/ucq.mli: Bagcq_relational Format Query
