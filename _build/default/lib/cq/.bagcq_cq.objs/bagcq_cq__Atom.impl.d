lib/cq/atom.ml: Array Bagcq_relational Format List Printf Set Stdlib Symbol Term
