lib/cq/term.ml: Format Map Set String
