lib/cq/parse.mli: Query
