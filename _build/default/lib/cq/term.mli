(** Terms of a conjunctive query: variables and constants. *)

type t =
  | Var of string
  | Cst of string

val var : string -> t
val cst : string -> t

val is_var : t -> bool
val is_cst : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val rename : (string -> string) -> t -> t
(** Applies a renaming to variables; constants are untouched. *)

val substitute : (string -> t option) -> t -> t
(** Replaces variables for which the substitution is defined. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
