(** Concrete syntax for conjunctive queries, used by the CLI and examples.

    Grammar:
    {v
      query   ::= conjunct ('&' conjunct)*            (also ',' as separator)
      conjunct ::= NAME '(' term (',' term)* ')'       an atom
                 | term '!=' term                      an inequality
      term    ::= NAME                                 a variable
                 | '\'' NAME '\''                      a constant
    v}
    Relation arities are inferred and must be used consistently.  The empty
    string (or the keyword [true]) denotes the empty conjunction. *)

val parse : string -> (Query.t, string) result
val parse_exn : string -> Query.t
