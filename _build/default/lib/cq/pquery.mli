(** Power-product queries: finite products [⋀̄ᵢ θᵢ ↑ eᵢ] with
    arbitrary-precision exponents.

    The paper's reductions build queries by disjoint conjunction and
    exponentiation whose materialised size is exponential — e.g.
    [δ_b = (⋀̄_{l∈L} δ_{b,l}) ↑ C] with [C = c·ζ_b(D_Arena)] astronomically
    large (Section 4.6).  Since all the theorems speak only about counts,
    and [(ρ ∧̄ ρ')(D) = ρ(D)·ρ'(D)] (Lemma 1) and [(θ↑k)(D) = θ(D)^k]
    (Definition 2), a query in power-product form can be evaluated
    factor-wise without ever materialising it. *)

open Bagcq_bignum

type t

val of_query : Query.t -> t
(** The trivial product [q ↑ 1]. *)

val one : t
(** The empty product — counts 1 on every database. *)

val factors : t -> (Query.t * Nat.t) list

val dconj : t -> t -> t
(** Product of the two factor lists ([∧̄] on the underlying queries). *)

val power : t -> Nat.t -> t
(** [θ ↑ e]: multiplies every exponent by [e].  [power q Nat.zero = one]. *)

val power_int : t -> int -> t

val flatten : t -> Query.t
(** Materialise as a plain CQ by [Query.power]-expanding every factor —
    only possible for small exponents.  Raises [Failure] when an exponent
    does not fit in an [int].  Used by tests to cross-check the factorised
    evaluator against direct counting. *)

val total_vars : t -> Nat.t
(** Number of variables of the flattened query ([Σᵢ eᵢ·|Var(θᵢ)|]),
    without flattening. *)

val has_neqs : t -> bool
val strip_neqs : t -> t

val map_queries : (Query.t -> Query.t) -> t -> t

val pp : Format.formatter -> t -> unit
