open Bagcq_relational
module StringSet = Set.Make (String)

type t = { atoms : Atom.t list; neqs : (Term.t * Term.t) list }

(* Inequalities are stored with their two sides in Term order, so that
   syntactic equality is orientation-insensitive. *)
let orient (a, b) = if Term.compare a b <= 0 then (a, b) else (b, a)

let make ?(neqs = []) atoms =
  List.iter
    (fun (a, b) ->
      if Term.equal a b then
        invalid_arg
          (Printf.sprintf "Query.make: reflexive inequality %s != %s" (Term.to_string a)
             (Term.to_string b)))
    neqs;
  let atoms = List.sort_uniq Atom.compare atoms in
  let neqs =
    List.sort_uniq
      (fun (a, b) (c, d) ->
        match Term.compare a c with 0 -> Term.compare b d | cmp -> cmp)
      (List.map orient neqs)
  in
  { atoms; neqs }

let true_query = { atoms = []; neqs = [] }
let atoms q = q.atoms
let neqs q = q.neqs

let var_set q =
  let from_atoms =
    List.fold_left
      (fun acc a -> List.fold_left (fun acc x -> StringSet.add x acc) acc (Atom.vars a))
      StringSet.empty q.atoms
  in
  List.fold_left
    (fun acc (a, b) ->
      let add t acc = match t with Term.Var x -> StringSet.add x acc | Term.Cst _ -> acc in
      add a (add b acc))
    from_atoms q.neqs

let vars q = StringSet.elements (var_set q)

let constants q =
  let from_atoms =
    List.fold_left
      (fun acc a -> List.fold_left (fun acc c -> StringSet.add c acc) acc (Atom.constants a))
      StringSet.empty q.atoms
  in
  let all =
    List.fold_left
      (fun acc (a, b) ->
        let add t acc = match t with Term.Cst c -> StringSet.add c acc | Term.Var _ -> acc in
        add a (add b acc))
      from_atoms q.neqs
  in
  StringSet.elements all

let schema q =
  let syms = List.map Atom.sym q.atoms in
  Schema.make ~constants:(constants q) (List.sort_uniq Symbol.compare syms)

let num_atoms q = List.length q.atoms
let num_vars q = StringSet.cardinal (var_set q)
let num_neqs q = List.length q.neqs
let has_neqs q = q.neqs <> []
let strip_neqs q = { q with neqs = [] }

let conj a b = make ~neqs:(a.neqs @ b.neqs) (a.atoms @ b.atoms)

let rename_vars f q =
  make
    ~neqs:(List.map (fun (a, b) -> (Term.rename f a, Term.rename f b)) q.neqs)
    (List.map (Atom.rename f) q.atoms)

let rename_apart ~avoid q =
  let taken = ref (var_set avoid) in
  let mapping = Hashtbl.create 16 in
  let fresh x =
    match Hashtbl.find_opt mapping x with
    | Some y -> y
    | None ->
        let y =
          if not (StringSet.mem x !taken) then x
          else begin
            let rec try_suffix i =
              let cand = Printf.sprintf "%s~%d" x i in
              if StringSet.mem cand !taken then try_suffix (i + 1) else cand
            in
            try_suffix 1
          end
        in
        taken := StringSet.add y !taken;
        Hashtbl.add mapping x y;
        y
  in
  (* own variables must not collide either: register them as taken lazily by
     walking all vars of q through [fresh] *)
  rename_vars fresh q

let dconj a b = conj a (rename_apart ~avoid:a b)

let power q k =
  if k < 0 then invalid_arg "Query.power: negative exponent";
  let rec go acc k = if k = 0 then acc else go (dconj acc q) (k - 1) in
  go true_query k

let value_of_term = function
  | Term.Var x -> Value.of_var x
  | Term.Cst c -> Value.sym c

let canonical_structure q =
  let base = Structure.empty (schema q) in
  let with_consts = List.fold_left Structure.declare_constant base (constants q) in
  List.fold_left
    (fun acc a ->
      Structure.add_atom acc (Atom.sym a) (Array.map value_of_term (Atom.args a)))
    with_consts q.atoms

let of_structure d =
  (* invert the constant interpretation: an element that is the image of a
     constant becomes that constant; everything else becomes a variable
     named after the element *)
  let const_of =
    List.fold_left
      (fun acc c ->
        match Structure.interpretation d c with
        | Some v -> Value.Map.add v c acc
        | None -> acc)
      Value.Map.empty
      (Schema.constants (Structure.schema d))
  in
  let term_of v =
    match Value.Map.find_opt v const_of with
    | Some c -> Term.cst c
    | None -> (
        match v with
        | Value.Sym s when String.length s > 0 && s.[0] = '$' ->
            Term.var (String.sub s 1 (String.length s - 1))
        | v -> Term.var (Value.to_string v))
  in
  let atoms =
    Structure.fold_atoms
      (fun sym tup acc -> Atom.of_array sym (Array.map term_of tup) :: acc)
      d []
  in
  make atoms

let compare a b =
  match List.compare Atom.compare a.atoms b.atoms with
  | 0 ->
      List.compare
        (fun (x, y) (x', y') ->
          match Term.compare x x' with 0 -> Term.compare y y' | c -> c)
        a.neqs b.neqs
  | c -> c

let equal a b = compare a b = 0

(* Union–find over variables; each atom/inequality merges its variables.
   Then group atoms by the root of (any of) their variables. *)
let components q =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some None -> x
    | Some (Some p) ->
        let r = find p in
        Hashtbl.replace parent x (Some r);
        r
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then Hashtbl.replace parent rx (Some ry)
  in
  let register x = if not (Hashtbl.mem parent x) then Hashtbl.add parent x None in
  let merge_vars = function
    | [] -> ()
    | x :: rest ->
        register x;
        List.iter
          (fun y ->
            register y;
            union x y)
          rest
  in
  List.iter (fun a -> merge_vars (Atom.vars a)) q.atoms;
  List.iter
    (fun (a, b) ->
      let vs =
        List.filter_map (function Term.Var x -> Some x | Term.Cst _ -> None) [ a; b ]
      in
      merge_vars vs)
    q.neqs;
  let groups : (string, t ref) Hashtbl.t = Hashtbl.create 16 in
  let singletons = ref [] in
  let add_to key piece =
    match Hashtbl.find_opt groups key with
    | Some cell -> cell := conj !cell piece
    | None -> Hashtbl.add groups key (ref piece)
  in
  List.iter
    (fun a ->
      match Atom.vars a with
      | [] -> singletons := make [ a ] :: !singletons
      | x :: _ -> add_to (find x) (make [ a ]))
    q.atoms;
  List.iter
    (fun (a, b) ->
      let piece = make ~neqs:[ (a, b) ] [] in
      match
        List.filter_map (function Term.Var x -> Some x | Term.Cst _ -> None) [ a; b ]
      with
      | [] -> singletons := piece :: !singletons
      | x :: _ -> add_to (find x) piece)
    q.neqs;
  let grouped = Hashtbl.fold (fun _ cell acc -> !cell :: acc) groups [] in
  List.sort compare (grouped @ !singletons)

let pp fmt q =
  if q.atoms = [] && q.neqs = [] then Format.pp_print_string fmt "true"
  else begin
    let pp_neq fmt (a, b) = Format.fprintf fmt "%a != %a" Term.pp a Term.pp b in
    let sep fmt () = Format.fprintf fmt " &@ " in
    Format.fprintf fmt "@[<hov>%a" (Format.pp_print_list ~pp_sep:sep Atom.pp) q.atoms;
    if q.atoms <> [] && q.neqs <> [] then sep fmt ();
    Format.fprintf fmt "%a@]" (Format.pp_print_list ~pp_sep:sep pp_neq) q.neqs
  end

let to_string q = Format.asprintf "%a" pp q
