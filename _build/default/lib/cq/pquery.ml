open Bagcq_bignum

type t = (Query.t * Nat.t) list

let of_query q = [ (q, Nat.one) ]
let one : t = []
let factors t = t

let dconj (a : t) (b : t) : t = a @ b

let power (t : t) e =
  if Nat.is_zero e then one else List.map (fun (q, k) -> (q, Nat.mul k e)) t

let power_int t e =
  if e < 0 then invalid_arg "Pquery.power_int: negative exponent";
  power t (Nat.of_int e)

let flatten (t : t) =
  List.fold_left
    (fun acc (q, e) -> Query.dconj acc (Query.power q (Nat.to_int e)))
    Query.true_query t

let total_vars (t : t) =
  List.fold_left
    (fun acc (q, e) -> Nat.add acc (Nat.mul e (Nat.of_int (Query.num_vars q))))
    Nat.zero t

let has_neqs t = List.exists (fun (q, _) -> Query.has_neqs q) t
let strip_neqs t = List.map (fun (q, e) -> (Query.strip_neqs q, e)) t
let map_queries f t = List.map (fun (q, e) -> (f q, e)) t

let pp fmt (t : t) =
  match t with
  | [] -> Format.pp_print_string fmt "true"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun f () -> Format.fprintf f " @,*&* ")
        (fun f (q, e) ->
          if Nat.equal e Nat.one then Format.fprintf f "(%a)" Query.pp q
          else Format.fprintf f "(%a)^%a" Query.pp q Nat.pp e)
        fmt t
