(** A small DSL for writing queries inline, used throughout the reduction
    modules, the examples and the tests:

    {[
      let e = Build.sym "E" 2 in
      let q = Build.(query [ atom e [ v "x"; v "y" ]; atom e [ v "y"; v "x" ] ]
                       ~neqs:[ (v "x", v "y") ])
    ]} *)

open Bagcq_relational

val v : string -> Term.t
val c : string -> Term.t
val sym : string -> int -> Symbol.t
val atom : Symbol.t -> Term.t list -> Atom.t
val query : ?neqs:(Term.t * Term.t) list -> Atom.t list -> Query.t

val path : Symbol.t -> Term.t list -> Atom.t list
(** [path e [t₁;…;t_k]] is the chain [e(t₁,t₂) ∧ … ∧ e(t_{k−1},t_k)].
    Requires a binary symbol and at least two terms. *)

val cycle : Symbol.t -> Term.t list -> Atom.t list
(** [cycle e [t₁;…;t_k]] is [path] closed with [e(t_k,t₁)] — the query
    [δ_{b,l}] of Section 4.6 is [cycle e [z₁;…;z_l]]. *)

val vars : string -> int -> Term.t list
(** [vars "x" 4] is [[x1; x2; x3; x4]]. *)
