(** Boolean conjunctive queries, possibly with inequalities and constants.

    All queries are boolean and all variables are implicitly existentially
    quantified (Section 2.1).  An inequality [x ≠ x'] is an atomic formula
    over the virtual relation interpreted as [V_D×V_D ∖ diag]; a variable
    occurring only in inequalities still ranges over the whole active
    domain. *)

open Bagcq_relational

type t

val make : ?neqs:(Term.t * Term.t) list -> Atom.t list -> t
(** Duplicate atoms are kept once (a CQ is a set of atoms); a syntactically
    reflexive inequality [t ≠ t] raises [Invalid_argument] (it is
    unsatisfiable by construction and always a bug in a reduction). *)

val true_query : t
(** The empty conjunction; [true_query (D) = 1] for every [D]. *)

val atoms : t -> Atom.t list
val neqs : t -> (Term.t * Term.t) list

val vars : t -> string list
(** [Var(ψ)]: all variables, sorted, each once — including variables that
    occur only in inequalities. *)

val constants : t -> string list
val schema : t -> Schema.t

val num_atoms : t -> int
val num_vars : t -> int
val num_neqs : t -> int
val has_neqs : t -> bool

val strip_neqs : t -> t
(** [ψ'] — ψ with all inequalities removed (Lemma 23). *)

val conj : t -> t -> t
(** [ρ ∧ ρ']: shared-variable conjunction. *)

val rename_vars : (string -> string) -> t -> t

val rename_apart : avoid:t -> t -> t
(** Renames the variables of the second query so that they are disjoint
    from [Var(avoid)] (fresh names keep their stem, suffixed with [~n]). *)

val dconj : t -> t -> t
(** [ρ ∧̄ ρ']: disjoint conjunction — the variables of [ρ'] are first
    renamed apart from [ρ] (Section 2.2), so that
    [(ρ ∧̄ ρ')(D) = ρ(D)·ρ'(D)] (Lemma 1). *)

val power : t -> int -> t
(** [θ↑k] (Definition 2).  [power θ 0 = true_query].
    Raises [Invalid_argument] if [k < 0]. *)

val canonical_structure : t -> Structure.t
(** The canonical (frozen) structure of the query: variables become the
    elements [Value.of_var x], constants become schema constants with their
    canonical interpretation.  Inequalities do not contribute atoms. *)

val of_structure : Structure.t -> t
(** The canonical query of a structure: every element becomes a variable —
    except interpreted constants, which stay constants.  Inverse of
    {!canonical_structure} on structures whose elements are frozen
    variables. *)

val equal : t -> t -> bool
(** Syntactic equality (same atom set, same inequality set) up to the order
    of atoms and the orientation of inequalities — not isomorphism. *)

val compare : t -> t -> int

val components : t -> t list
(** Connected components: two atoms (or inequalities) are connected when
    they share a variable.  Constants do not connect components (their
    images are pinned, so homomorphism counts factorise across the split —
    this is what makes the factorised evaluator sound).  Atoms without
    variables are singleton components.  The count of a query is the
    product of the counts of its components. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
