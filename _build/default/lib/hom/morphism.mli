(** Homomorphisms between queries, onto-homomorphisms, and isomorphism.

    A homomorphism of queries [h : ρ_b → ρ_s] maps variables to terms so
    that atoms map to atoms and constants are fixed.  Lemma 12's proof
    technique is implemented here: if an {e onto} such [h] exists then
    [ρ_s(D) ≤ ρ_b(D)] for every [D], because [g ↦ g∘h] injects
    [Hom(ρ_s,D)] into [Hom(ρ_b,D)].

    Isomorphism of queries is the Chaudhuri–Vardi characterisation of
    bag-equivalence for CQs, used as a decidable baseline in
    {!Bagcq_reduction.Containment}. *)

open Bagcq_cq

type hom = Term.t Map.Make(String).t
(** A variable-to-term map; constants are implicitly fixed. *)

val apply : hom -> Term.t -> Term.t

val is_hom : hom -> Query.t -> Query.t -> bool
(** [is_hom h source target]: every atom of [source] maps into the atom set
    of [target] (inequalities of [source] must map to inequalities
    syntactically present in [target] or to pairs of distinct constants). *)

val is_onto : hom -> Query.t -> Query.t -> bool
(** The image of [h] covers all terms of the target: every variable and
    constant of [target] is [h(t)] for some term [t] of [source]
    (constants cover themselves). *)

val find_hom : Query.t -> Query.t -> hom option
(** Some homomorphism [source → target], by backtracking over the target's
    canonical structure.  Ignores inequalities of the source unless they
    map to distinct terms — for inequality-free queries this is exact. *)

val exists_onto_hom : Query.t -> Query.t -> bool
(** Whether some onto homomorphism [source → target] exists.  Exponential
    in the worst case; meant for the moderately sized reduction queries. *)

val count_dominates : Query.t -> Query.t -> bool
(** [count_dominates bigger smaller]: sound, incomplete sufficient
    condition for [smaller(D) ≤ bigger(D)] for all [D] — the onto-
    homomorphism criterion of Lemma 12 ([bigger] plays ρ_b, [smaller]
    plays ρ_s). *)

val isomorphic : Query.t -> Query.t -> bool
(** Query isomorphism: a bijective variable renaming turning one atom set
    (and inequality set) into the other.  Characterises bag-equivalence of
    CQs (Chaudhuri–Vardi). *)

(** {2 Cores and set-semantics equivalence (Chandra–Merlin)} *)

val retract : Query.t -> Query.t option
(** One proper retraction: an endomorphism of the query whose image misses
    at least one variable, yielding the strictly smaller image subquery.
    [None] when the query is its own core.  Inequality-free queries only
    (raises [Invalid_argument] otherwise). *)

val core : Query.t -> Query.t
(** The core — the minimal retract, unique up to isomorphism.  Two
    inequality-free CQs are set-semantics equivalent iff their cores are
    isomorphic. *)

val set_equivalent : Query.t -> Query.t -> bool
(** Homomorphisms both ways between the canonical structures — boolean
    set-semantics equivalence. *)
