lib/hom/answers.ml: Bagcq_bignum Bagcq_cq Bagcq_relational Format List Map Nat Option Query Set Solver String Structure Term Tuple Value
