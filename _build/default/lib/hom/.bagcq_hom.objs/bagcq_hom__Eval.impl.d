lib/hom/eval.ml: Bagcq_bignum Bagcq_cq Hashtbl List Map Nat Pquery Printf Query Solver Ucq
