lib/hom/eval.mli: Bagcq_bignum Bagcq_cq Bagcq_relational Nat Pquery Query Structure Ucq
