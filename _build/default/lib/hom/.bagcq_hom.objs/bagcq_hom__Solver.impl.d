lib/hom/solver.ml: Array Bagcq_cq Bagcq_relational Hashtbl List Map Set String Structure Tuple Value
