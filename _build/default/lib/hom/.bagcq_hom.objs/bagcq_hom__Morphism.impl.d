lib/hom/morphism.ml: Atom Bagcq_cq Bagcq_relational List Map Query Solver String Symbol Term Value
