lib/hom/answers.mli: Bagcq_bignum Bagcq_cq Bagcq_relational Format Nat Query Structure Term Tuple
