lib/hom/solver.mli: Bagcq_cq Bagcq_relational Map Query String Structure Value
