lib/hom/morphism.mli: Bagcq_cq Map Query String Term
