open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq
module StringMap = Map.Make (String)
module StringSet = Set.Make (String)

type bag = Nat.t Tuple.Map.t

let empty_bag : bag = Tuple.Map.empty

let add_tuple tup n bag =
  Tuple.Map.update tup
    (function None -> Some n | Some m -> Some (Nat.add m n))
    bag

let answers ~head q d =
  (* head variables absent from the body range over the whole domain: each
     contributes independently, so group body homomorphisms by the bound
     part of the head and distribute the free part afterwards *)
  let body_vars = StringSet.of_list (Query.vars q) in
  let free_head_vars =
    List.filter_map
      (function
        | Term.Var x when not (StringSet.mem x body_vars) -> Some x
        | Term.Var _ | Term.Cst _ -> None)
      head
    |> List.sort_uniq String.compare
  in
  let domain = Value.Set.elements (Structure.domain d) in
  let interp c = Structure.interpretation d c in
  (* enumerate assignments for the free head variables *)
  let rec free_assignments vars acc =
    match vars with
    | [] -> [ acc ]
    | x :: rest ->
        List.concat_map (fun v -> free_assignments rest (StringMap.add x v acc)) domain
  in
  let frees = free_assignments free_head_vars StringMap.empty in
  let project env free =
    (* None when a head constant is uninterpreted *)
    let rec go acc = function
      | [] -> Some (Tuple.make (List.rev acc))
      | Term.Cst c :: rest -> (
          match interp c with Some v -> go (v :: acc) rest | None -> None)
      | Term.Var x :: rest -> (
          match StringMap.find_opt x env with
          | Some v -> go (v :: acc) rest
          | None -> (
              match StringMap.find_opt x free with
              | Some v -> go (v :: acc) rest
              | None -> None))
    in
    go [] head
  in
  Solver.fold
    (fun bag env ->
      List.fold_left
        (fun bag free ->
          match project env free with
          | Some tup -> add_tuple tup Nat.one bag
          | None -> bag)
        bag frees)
    empty_bag q d

let cardinal bag = Tuple.Map.fold (fun _ n acc -> Nat.add acc n) bag Nat.zero
let support bag = List.map fst (Tuple.Map.bindings bag)
let multiplicity bag tup = Option.value ~default:Nat.zero (Tuple.Map.find_opt tup bag)

let included small big =
  Tuple.Map.for_all (fun tup n -> Nat.compare n (multiplicity big tup) <= 0) small

let equal a b = Tuple.Map.equal Nat.equal a b

let contained_on ~head_small ~head_big ~small ~big d =
  if List.length head_small <> List.length head_big then
    invalid_arg "Answers.contained_on: head arity mismatch";
  included (answers ~head:head_small small d) (answers ~head:head_big big d)

let pp fmt bag =
  Format.fprintf fmt "{@[<hov>%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       (fun f (tup, n) -> Format.fprintf f "%a×%a" Tuple.pp tup Nat.pp n))
    (Tuple.Map.bindings bag)
