(** Non-boolean conjunctive queries: answer {e bags}.

    Section 1.1 states QCP for general queries, whose result [Ψ(D)] is a
    multiset of tuples; Section 2.3 then explains how constants in boolean
    queries trade against free variables.  This module evaluates a CQ with
    a tuple of head terms to its answer bag — each answer tuple paired with
    its multiplicity, the number of homomorphisms projecting to it — and
    decides the multiset inclusions the general QCP speaks about.

    A head variable that does not occur in the body ranges over the whole
    active domain (the usual semantics of free variables). *)

open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq

type bag
(** A finite multiset of answer tuples with {!Nat.t} multiplicities. *)

val answers : head:Term.t list -> Query.t -> Structure.t -> bag
(** Raises [Invalid_argument] when a head constant has no interpretation is
    not required — such a head simply yields the empty bag (as for bodies
    with uninterpreted constants). *)

val cardinal : bag -> Nat.t
(** Total multiplicity — for an empty head this is exactly the boolean bag
    count [ψ(D)]. *)

val support : bag -> Tuple.t list
(** The distinct answer tuples, sorted. *)

val multiplicity : bag -> Tuple.t -> Nat.t

val included : bag -> bag -> bool
(** Multiset inclusion: every tuple's multiplicity on the left is ≤ its
    multiplicity on the right. *)

val equal : bag -> bag -> bool

val contained_on :
  head_small:Term.t list ->
  head_big:Term.t list ->
  small:Query.t ->
  big:Query.t ->
  Structure.t ->
  bool
(** One instance of the general [QCP^bag]: [Ψ_s(D) ⊆ Ψ_b(D)] as multisets.
    Raises [Invalid_argument] when the two heads have different lengths. *)

val pp : Format.formatter -> bag -> unit
