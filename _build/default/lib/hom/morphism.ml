open Bagcq_relational
open Bagcq_cq
module StringMap = Map.Make (String)
module TermSet = Term.Set

type hom = Term.t StringMap.t

let apply h = function
  | Term.Var x as t -> ( match StringMap.find_opt x h with Some t' -> t' | None -> t)
  | Term.Cst _ as t -> t

let orient (a, b) = if Term.compare a b <= 0 then (a, b) else (b, a)

let is_hom h source target =
  let target_atoms = Atom.Set.of_list (Query.atoms target) in
  let atoms_ok =
    List.for_all
      (fun a -> Atom.Set.mem (Atom.substitute (fun x -> StringMap.find_opt x h) a) target_atoms)
      (Query.atoms source)
  in
  let neq_ok (a, b) =
    let a' = apply h a and b' = apply h b in
    match (a', b') with
    | Term.Cst x, Term.Cst y -> not (String.equal x y)
    | _ ->
        List.exists
          (fun p ->
            let x, y = orient p in
            let x', y' = orient (a', b') in
            Term.equal x x' && Term.equal y y')
          (Query.neqs target)
  in
  atoms_ok && List.for_all neq_ok (Query.neqs source)

let terms_of q =
  TermSet.union
    (TermSet.of_list (List.map Term.var (Query.vars q)))
    (TermSet.of_list (List.map Term.cst (Query.constants q)))

let is_onto h source target =
  let image = TermSet.map (apply h) (terms_of source) in
  TermSet.subset (terms_of target) image

let term_of_value = function
  | Value.Sym s when String.length s > 0 && s.[0] = '$' ->
      Term.var (String.sub s 1 (String.length s - 1))
  | Value.Sym s -> Term.cst s
  | v -> Term.var (Value.to_string v)

let hom_of_assignment (a : Solver.assignment) : hom = StringMap.map term_of_value a

exception Found

let find_hom source target =
  let d = Query.canonical_structure target in
  match Solver.enumerate ~limit:1 source d with
  | [] -> None
  | a :: _ -> Some (hom_of_assignment a)

let exists_onto_hom source target =
  let d = Query.canonical_structure target in
  try
    Solver.iter
      (fun a -> if is_onto (hom_of_assignment a) source target then raise_notrace Found)
      source d;
    false
  with Found -> true

let count_dominates bigger smaller = exists_onto_hom bigger smaller

let multiset_symbols q =
  List.sort compare (List.map (fun a -> Symbol.name (Atom.sym a)) (Query.atoms q))

let isomorphic q1 q2 =
  Query.num_vars q1 = Query.num_vars q2
  && Query.num_atoms q1 = Query.num_atoms q2
  && Query.num_neqs q1 = Query.num_neqs q2
  && multiset_symbols q1 = multiset_symbols q2
  && begin
       let vars2 = TermSet.of_list (List.map Term.var (Query.vars q2)) in
       let atoms2 = Atom.Set.of_list (Query.atoms q2) in
       let neqs2 =
         List.sort_uniq compare (List.map (fun p -> orient p) (Query.neqs q2))
       in
       let d2 = Query.canonical_structure q2 in
       let bijective h =
         let image =
           StringMap.fold (fun _ t acc -> TermSet.add t acc) h TermSet.empty
         in
         TermSet.equal image vars2
       in
       let atoms_onto h =
         let image =
           List.map (Atom.substitute (fun x -> StringMap.find_opt x h)) (Query.atoms q1)
         in
         Atom.Set.equal (Atom.Set.of_list image) atoms2
       in
       let neqs_match h =
         let image =
           List.sort_uniq compare
             (List.map (fun (a, b) -> orient (apply h a, apply h b)) (Query.neqs q1))
         in
         image = neqs2
       in
       try
         Solver.iter
           (fun a ->
             let h = hom_of_assignment a in
             if bijective h && atoms_onto h && neqs_match h then raise_notrace Found)
           (Query.strip_neqs q1) d2;
         false
       with Found -> true
     end

let image_subquery h q =
  Query.make
    (List.map (Atom.substitute (fun x -> StringMap.find_opt x h)) (Query.atoms q))

let retract q =
  if Query.has_neqs q then invalid_arg "Morphism.retract: inequality-free CQs only";
  let d = Query.canonical_structure q in
  let n_vars = Query.num_vars q in
  let result = ref None in
  (try
     Solver.iter
       (fun a ->
         let h = hom_of_assignment a in
         let image_vars =
           StringMap.fold
             (fun _ t acc ->
               match t with Term.Var x -> TermSet.add (Term.var x) acc | Term.Cst _ -> acc)
             h TermSet.empty
         in
         if TermSet.cardinal image_vars < n_vars then begin
           result := Some (image_subquery h q);
           raise_notrace Found
         end)
       q d;
     None
   with Found -> !result)

let rec core q = match retract q with None -> q | Some smaller -> core smaller

let set_equivalent q1 q2 =
  Solver.exists q1 (Query.canonical_structure q2)
  && Solver.exists q2 (Query.canonical_structure q1)
