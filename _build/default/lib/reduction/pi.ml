open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11
module StringMap = Map.Make (String)

let x_var = Term.var "x"
let ray_var m k = Term.var (Printf.sprintf "s%d_%d" m k)
let y_var d = Term.var (Printf.sprintf "y%d" d)
let z_var d = Term.var (Printf.sprintf "z%d" d)
let yp_var d = Term.var (Printf.sprintf "yp%d" d)
let zp_var d = Term.var (Printf.sprintf "zp%d" d)

(* the S_m-loop plus a ray of c−1 edges hanging off x *)
let monomial_star m c =
  let loop = Atom.make (Sigma.s_symbol m) [ x_var; x_var ] in
  let ray =
    if c <= 1 then []
    else begin
      let first = Atom.make (Sigma.s_symbol m) [ x_var; ray_var m (c - 1) ] in
      let chain =
        List.init (c - 2) (fun i ->
            let k = i + 1 in
            Atom.make (Sigma.s_symbol m) [ ray_var m (k + 1); ray_var m k ])
      in
      first :: chain
    end
  in
  loop :: ray

let valuation_rays degree =
  List.concat_map
    (fun d ->
      [
        Atom.make (Sigma.r_symbol d) [ x_var; y_var d ];
        Atom.make Sigma.x_symbol [ y_var d; z_var d ];
      ])
    (List.init degree (fun i -> i + 1))

let pi_with coeffs (t : Lemma11.t) =
  let stars =
    List.concat
      (List.mapi (fun i c -> monomial_star (i + 1) c) (Array.to_list coeffs))
  in
  Query.make (stars @ valuation_rays t.Lemma11.degree)

let pi_s (t : Lemma11.t) = pi_with t.Lemma11.cs t

let pi_b (t : Lemma11.t) =
  let base = pi_with t.Lemma11.cb t in
  let x1_rays =
    List.concat_map
      (fun d ->
        [
          Atom.make (Sigma.r_symbol 1) [ x_var; yp_var d ];
          Atom.make Sigma.x_symbol [ yp_var d; zp_var d ];
        ])
      (List.init t.Lemma11.degree (fun i -> i + 1))
  in
  Query.make (Query.atoms base @ x1_rays)

let onto_witness (t : Lemma11.t) =
  let mapping = ref StringMap.empty in
  let bind v image =
    match v with Term.Var name -> mapping := StringMap.add name image !mapping | Term.Cst _ -> ()
  in
  bind x_var x_var;
  List.iteri
    (fun i cb ->
      let m = i + 1 in
      let cs = t.Lemma11.cs.(i) in
      for k = 1 to cb - 1 do
        bind (ray_var m k) (if k <= cs - 1 then ray_var m k else x_var)
      done)
    (Array.to_list t.Lemma11.cb);
  for d = 1 to t.Lemma11.degree do
    bind (y_var d) (y_var d);
    bind (z_var d) (z_var d);
    bind (yp_var d) (y_var 1);
    bind (zp_var d) (z_var 1)
  done;
  !mapping
