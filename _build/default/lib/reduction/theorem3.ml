open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq
module Eval = Bagcq_hom.Eval

type t = {
  c : int;
  alpha : Multiplier.t;
  psi_s : Pquery.t;
  psi_b : Pquery.t;
}

let reserved = [ "Rcyc"; "Pcyc"; "Acyc"; "Bcyc" ]

let check_schema pq =
  List.iter
    (fun (q, _) ->
      if Query.has_neqs q then invalid_arg "Theorem3.reduce: φ must be inequality-free";
      List.iter
        (fun sym ->
          if List.mem (Symbol.name sym) reserved then
            invalid_arg
              (Printf.sprintf "Theorem3.reduce: φ uses the reserved relation %s"
                 (Symbol.name sym)))
        (Schema.symbols (Query.schema q)))
    (Pquery.factors pq)

let reduce ~c ~phi_s ~phi_b =
  check_schema phi_s;
  check_schema phi_b;
  let alpha = Multiplier.alpha ~c in
  {
    c;
    alpha;
    psi_s = Pquery.dconj (Pquery.of_query alpha.Multiplier.qs) phi_s;
    psi_b = Pquery.dconj (Pquery.of_query alpha.Multiplier.qb) phi_b;
  }

let reduce_queries ~c ~phi_s ~phi_b =
  reduce ~c ~phi_s:(Pquery.of_query phi_s) ~phi_b:(Pquery.of_query phi_b)

let of_theorem1 (t1 : Theorem1.t) =
  match Nat.to_int_opt t1.Theorem1.cc with
  | None -> Error "Theorem 1 constant too large for a machine integer"
  | Some c when c < 2 -> Error "Theorem 1 constant unexpectedly below 2"
  | Some c -> Ok (reduce ~c ~phi_s:t1.Theorem1.phi_s ~phi_b:t1.Theorem1.phi_b)

let combine_witness t d1 = Structure.union d1 t.alpha.Multiplier.witness

let counts_on t d = (Eval.count_pquery t.psi_s d, Eval.count_pquery t.psi_b d)

let holds_on t d =
  Eval.pquery_geq t.psi_b d (Eval.count_pquery t.psi_s d)

let ban_constants t =
  let deconst q =
    let g = Bagcq_cq.Deconst.generalize q in
    (g.Bagcq_cq.Deconst.query, g.Bagcq_cq.Deconst.mapping)
  in
  let psi_s, map_s = deconst (Pquery.flatten t.psi_s) in
  let psi_b, _ = deconst (Pquery.flatten t.psi_b) in
  let hvar = List.assoc Consts.heart map_s and svar = List.assoc Consts.spade map_s in
  let psi_s_hard =
    Query.make
      ~neqs:((Bagcq_cq.Term.var hvar, Bagcq_cq.Term.var svar) :: Query.neqs psi_s)
      (Query.atoms psi_s)
  in
  (psi_s_hard, psi_b)
