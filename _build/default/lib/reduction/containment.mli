(** Query containment baselines: the decidable problems the paper's
    undecidable ones generalise.

    - Set semantics ([QCP^set_CQ]): Chandra–Merlin — [φ_s ⊆ φ_b] iff
      [φ_b] has a homomorphism into the canonical structure of [φ_s]
      (NP-complete, decidable).
    - Bag {e equivalence} of CQs: Chaudhuri–Vardi — equal counts on every
      database iff the queries are isomorphic.
    - Bag containment ([QCP^bag_CQ]): open!  The best this library — or
      anyone — can do is search for counterexamples ({!Bagcq_search}) and
      verify candidate witnesses, which is what these helpers support. *)

open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq

val set_contains : small:Query.t -> big:Query.t -> bool
(** Chandra–Merlin containment test for boolean CQs without inequalities
    ([D ⊨ small ⇒ D ⊨ big] for all [D]).  Raises [Invalid_argument] when
    either query has inequalities. *)

val bag_equivalent : Query.t -> Query.t -> bool
(** Chaudhuri–Vardi: syntactic isomorphism. *)

val bag_counts : small:Query.t -> big:Query.t -> Structure.t -> Nat.t * Nat.t

val bag_violation : small:Query.t -> big:Query.t -> Structure.t -> bool
(** [small(D) > big(D)] — a witness against bag containment. *)

val bag_violation_pquery : small:Pquery.t -> big:Pquery.t -> Structure.t -> bool
(** The power-product variant, decided without materialising counts. *)
