(** Multiplier pairs (Definition 3), their composition (Lemma 4), and the
    Section 3.2 assembly [α_s, α_b] that multiplies by an arbitrary natural
    number [c].

    A pair of CQs [(ϱ_s, ϱ_b)] {e multiplies by} a rational [q > 0] when
    - (=) some non-trivial database [D] has [ϱ_s(D) = q·ϱ_b(D) ≠ 0], and
    - (≤) every non-trivial database [D] has [ϱ_s(D) ≤ q·ϱ_b(D)].

    Condition (=) is decidable given the witness; condition (≤) quantifies
    over all databases — it is the content of Lemmas 5 and 10 — and is
    validated here by exhaustive enumeration on tiny domains plus random
    sampling ({!Bagcq_reduction} tests). *)

open Bagcq_relational
open Bagcq_cq
open Bagcq_bignum

type t = private {
  qs : Query.t;  (** the s-query — never has inequalities in the pairs built here *)
  qb : Query.t;  (** the b-query — at most one inequality *)
  ratio : Rat.t;
  witness : Structure.t;  (** realises condition (=) *)
}

val make : qs:Query.t -> qb:Query.t -> ratio:Rat.t -> witness:Structure.t -> t
(** Checks that the witness is non-trivial and satisfies (=); raises
    [Invalid_argument] otherwise. *)

val beta : p:int -> t
(** Lemma 5's pair; multiplies by [(p+1)²/2p].  Requires [p ≥ 3]. *)

val gamma : m:int -> t
(** Lemma 10's pair; multiplies by [(m−1)/m].  Requires [m ≥ 2]. *)

val compose : t -> t -> t
(** Lemma 4: if the schemas are disjoint, the disjoint conjunctions
    multiply by the product of the ratios.  The combined witness is the
    union of the two witnesses (they share only ♥ and ♠).  Raises
    [Invalid_argument] when the schemas overlap. *)

val alpha : c:int -> t
(** The Section 3.2 assembly: [β] with [p = 2c−1] composed with [γ] with
    [m = p+1] multiplies by exactly [c].  [α_s] has no inequality, [α_b]
    exactly one.  Requires [c ≥ 2]. *)

val check_eq : t -> bool
(** Re-verify condition (=) on the stored witness by exact counting. *)

val check_le_on : t -> Structure.t -> bool
(** Condition (≤) on one database: [ϱ_s(D) ≤ q·ϱ_b(D)].  Vacuously true on
    trivial databases (the definition only quantifies over non-trivial
    ones). *)

val counts_on : t -> Structure.t -> Nat.t * Nat.t
(** [(ϱ_s(D), ϱ_b(D))]. *)
