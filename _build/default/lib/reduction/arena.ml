open Bagcq_relational
open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11
module Eval = Bagcq_hom.Eval

let cst = Term.cst

let arena_pi (t : Lemma11.t) =
  let m_count = Lemma11.num_monomials t in
  let occurrence_atoms =
    List.map
      (fun (n, d, m) ->
        Atom.make (Sigma.r_symbol d) [ cst (Sigma.am_const m); cst (Sigma.bn_const n) ])
      (Lemma11.occurrences t)
  in
  let loop_atoms =
    List.concat_map
      (fun m ->
        List.map
          (fun m' -> Atom.make (Sigma.s_symbol m') [ cst (Sigma.am_const m); cst (Sigma.am_const m) ])
          (List.init m_count (fun i -> i + 1)))
      (List.init m_count (fun i -> i + 1))
  in
  let escape_atoms =
    List.concat_map
      (fun m ->
        [
          Atom.make (Sigma.s_symbol m) [ cst (Sigma.am_const m); cst Sigma.a_const ];
          Atom.make (Sigma.s_symbol m) [ cst Sigma.a_const; cst Sigma.a_const ];
        ])
      (List.init m_count (fun i -> i + 1))
  in
  Query.make (occurrence_atoms @ loop_atoms @ escape_atoms)

let cycle_constants (t : Lemma11.t) =
  (cst Consts.spade :: cst Sigma.a_const
   :: List.init (Lemma11.num_monomials t) (fun i -> cst (Sigma.am_const (i + 1))))
  @ List.init t.Lemma11.n_vars (fun i -> cst (Sigma.bn_const (i + 1)))

let arena_delta (t : Lemma11.t) =
  let heart_loop = Atom.make Sigma.e_symbol [ cst Consts.heart; cst Consts.heart ] in
  Query.make (heart_loop :: Build.cycle Sigma.e_symbol (cycle_constants t))

let arena t = Query.conj (arena_pi t) (arena_delta t)

let d_arena t = Query.canonical_structure (arena t)

type status =
  | Not_arena
  | Correct
  | Slightly_incorrect
  | Seriously_incorrect

let status_to_string = function
  | Not_arena -> "not-arena"
  | Correct -> "correct"
  | Slightly_incorrect -> "slightly-incorrect"
  | Seriously_incorrect -> "seriously-incorrect"

let classify t d =
  if not (Eval.satisfies d (arena t)) then Not_arena
  else begin
    (* D ⊨ Arena, so every Arena constant is interpreted in D *)
    let consts = Schema.constants (Structure.schema (d_arena t)) in
    let interp = List.map (fun c -> (c, Structure.interpret_exn d c)) consts in
    let values = List.map snd interp in
    let injective =
      Value.Set.cardinal (Value.Set.of_list values) = List.length values
    in
    if not injective then Seriously_incorrect
    else begin
      (* the canonical hom D_Arena → D is injective; D is correct when its
         Σ₀-part contains nothing beyond the image of D_Arena *)
      let rename v =
        match v with
        | Value.Sym c -> (
            match List.assoc_opt c interp with Some w -> w | None -> v)
        | v -> v
      in
      let image = Structure.map_values rename (d_arena t) in
      let exact =
        List.for_all
          (fun sym -> Tuple.Set.equal (Structure.tuple_set d sym) (Structure.tuple_set image sym))
          (Sigma.e_symbol :: Sigma.sigma_rs t)
      in
      if exact then Correct else Slightly_incorrect
    end
  end
