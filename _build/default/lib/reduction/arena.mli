(** The [Arena] query (Sections 4.4 and 4.6) and the correctness
    classification of databases (Definition 13).

    [Arena = Arena_π ∧ Arena_δ] mentions only constants, so
    [Arena(D) ∈ {0,1}]:

    - [Arena_π = ⋀_{(n,d,m)∈𝒫} R_d(a_m, b_n)
                 ∧ ⋀_{m,m'} S_{m'}(a_m, a_m)
                 ∧ ⋀_m (S_m(a_m, a) ∧ S_m(a, a))];
    - [Arena_δ] is the self-loop [E(♥,♥)] plus the [E]-cycle
      [♠ → a → a₁ → … → a_m → b₁ → … → b_n → ♠] of length [𝕝 = n+m+2].

    A database [D ⊨ Arena] is {e correct} when (up to the naming of its
    elements) it is exactly [D_Arena] plus [X]-atoms, {e slightly
    incorrect} when it embeds [D_Arena] injectively but has extra
    [Σ₀]-atoms, and {e seriously incorrect} when the canonical
    homomorphism [D_Arena → D] identifies constants. *)

open Bagcq_relational
open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11

val arena_pi : Lemma11.t -> Query.t
val arena_delta : Lemma11.t -> Query.t
val arena : Lemma11.t -> Query.t

val d_arena : Lemma11.t -> Structure.t
(** The canonical structure of [Arena] — all constants canonically
    interpreted. *)

type status =
  | Not_arena  (** [D ⊭ Arena] — then [φ_s(D) = 0] and nothing to prove *)
  | Correct
  | Slightly_incorrect
  | Seriously_incorrect

val classify : Lemma11.t -> Structure.t -> status
(** Classification is invariant under renaming of elements: [Correct] and
    [Slightly_incorrect] compare the image of [D_Arena] under the
    database's constant interpretation, which must be injective;
    non-injective interpretations are [Seriously_incorrect]. *)

val status_to_string : status -> string
