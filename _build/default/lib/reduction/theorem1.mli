(** Theorem 1: the full reduction from the Lemma 11 inequality problem to
    multiplicative-constant bag containment of inequality-free boolean
    CQs.

    Given an instance [(c, P_s, P_b)], the reduction outputs
    [(ℂ, φ_s, φ_b)] with [φ_s = Arena ∧̄ π_s] and
    [φ_b = π_b ∧̄ ζ_b ∧̄ δ_b], such that (Section 4.7):

    - some valuation violates [c·P_s(Ξ) ≤ Ξ(x₁)^d·P_b(Ξ)]  ⟺
    - some non-trivial database violates [ℂ·φ_s(D) ≤ φ_b(D)].

    Since [δ_b]'s exponent is [ℂ] itself, [φ_b] is a power-product query;
    its counts are compared, never materialised. *)

open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11

type t = private {
  instance : Lemma11.t;
  cc : Nat.t;  (** ℂ = c·ℂ₁ *)
  arena : Query.t;
  pi_s : Query.t;
  pi_b : Query.t;
  zeta : Zeta.t;
  delta_b : Pquery.t;
  phi_s : Pquery.t;
  phi_b : Pquery.t;
}

val reduce : Lemma11.t -> t

val of_polynomial : Bagcq_poly.Polynomial.t -> t
(** Chain the Appendix B pipeline and the reduction: from an instance of
    Hilbert's 10th problem straight to queries. *)

val holds_on : t -> Structure.t -> bool
(** [ℂ·φ_s(D) ≤ φ_b(D)], decided exactly (factored comparison). *)

val violating_db : t -> int array -> Structure.t
(** The correct database encoding a valuation — when the valuation violates
    the Lemma 11 inequality, this database violates the query inequality
    (direction ℛ ⇒ ☆ of Section 4.7). *)

val lhs : t -> Structure.t -> Nat.t
(** [ℂ·φ_s(D)]. *)

val phi_s_count : t -> Structure.t -> Nat.t
val classify : t -> Structure.t -> Arena.status
