open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq
module Eval = Bagcq_hom.Eval

let lemma24_lower_bound psi_s d =
  let p = Query.num_neqs psi_s in
  let blown = Ops.blowup d 2 in
  let with_neqs = Eval.count psi_s blown in
  let stripped = Eval.count (Query.strip_neqs psi_s) blown in
  Nat.compare (Nat.mul (Nat.pow Nat.two p) with_neqs) stripped >= 0

let transfer_witness ?(max_k = 6) ~psi_s ~psi_b d0 =
  if Query.has_neqs psi_b then
    invalid_arg "Theorem5.transfer_witness: ψ_b must be inequality-free";
  let stripped = Query.strip_neqs psi_s in
  if Nat.compare (Eval.count stripped d0) (Eval.count psi_b d0) <= 0 then None
  else begin
    let rec try_k k =
      if k > max_k then None
      else begin
        let candidate = Ops.blowup (Ops.power d0 k) 2 in
        if Nat.compare (Eval.count psi_s candidate) (Eval.count psi_b candidate) > 0 then
          Some candidate
        else try_k (k + 1)
      end
    in
    try_k 1
  end

let equivalence_witnessed ~psi_s ~psi_b d0 =
  let stripped = Query.strip_neqs psi_s in
  if Nat.compare (Eval.count stripped d0) (Eval.count psi_b d0) <= 0 then true
  else begin
    match transfer_witness ~psi_s ~psi_b d0 with
    | Some d -> Nat.compare (Eval.count psi_s d) (Eval.count psi_b d) > 0
    | None -> false
  end
