(** Trivial databases, the "well of positivity", and the statements of
    Theorems 2 and 4.

    A database is {e trivial} when it does not interpret ♥ and ♠ as two
    distinct elements.  The extreme case is the {e well of positivity}: a
    single vertex on which every atomic formula holds and every constant is
    interpreted.  On the well, every inequality-free boolean CQ counts
    [exactly 1] (Section 1.2's footnote), which is why

    - Theorem 1 needs the non-triviality side condition
      (otherwise [ℂ·φ_s = ℂ > 1 = φ_b]);
    - a b-query with an inequality can never contain an inequality-free
      s-query outright — the remark before Theorem 4 — which is exactly
      what the [max{1, ρ_b(D)}] in Theorem 4, and the additive constant ℂ'
      in Theorem 2, compensate for.

    The paper defers the *proofs* of Theorems 2 and 4 to its full version;
    accordingly this module implements the {e problem statements} (exact
    per-database checkers, and the trivial-database analysis showing what
    the extra anti-cheating level must achieve), not a reduction. *)

open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq

val well_of_positivity : Schema.t -> Structure.t
(** One vertex; all atoms of every schema relation; every schema constant
    (♥ and ♠ included, whether declared or not) interpreted by the
    vertex. *)

val count_on_well : Query.t -> Nat.t
(** [ψ(well)] for the well over ψ's own schema: [1] if ψ has no
    inequalities, else [0] — computed by counting, with the closed form as
    a test oracle. *)

(** {2 Theorem 2: [c·φ_s(D) ≤ φ_b(D) + c']} over all databases *)

module Theorem2 : sig
  val holds_on : c:int -> c':Nat.t -> phi_s:Pquery.t -> phi_b:Pquery.t -> Structure.t -> bool

  val required_slack : c:int -> phi_s:Query.t -> phi_b:Query.t -> Nat.t
  (** The additive constant the well of positivity alone forces:
      [max(0, c·φ_s(well) − φ_b(well))] over the joint schema — [c − 1]
      for inequality-free queries satisfied on the well. *)
end

(** {2 Theorem 4: [ρ_s(D) ≤ max\{1, ρ_b(D)\}]} over all databases *)

module Theorem4 : sig
  val holds_on : rho_s:Query.t -> rho_b:Query.t -> Structure.t -> bool

  val max1_needed : rho_s:Query.t -> rho_b:Query.t -> bool
  (** Whether the [max{1,·}] guard is doing work for this pair: true when
      the well of positivity satisfies ρ_s but not ρ_b (the b-side
      inequality blinds it there) — the "well of positivity argument"
      before Theorem 4. *)
end
