open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11
module Eval = Bagcq_hom.Eval

let lengths t =
  let l = Sigma.ell t in
  List.init (l - 1) (fun i -> i + 1) @ [ l + 1 ]

let delta_bl l =
  if l < 1 then invalid_arg "Delta.delta_bl: length must be >= 1";
  Query.make (Build.cycle Sigma.e_symbol (Build.vars "z" l))

let base t =
  List.fold_left
    (fun acc l -> Pquery.dconj acc (Pquery.of_query (delta_bl l)))
    Pquery.one (lengths t)

let delta_b t ~cc = Pquery.power (base t) cc

let base_count t d = Eval.count_pquery (base t) d
