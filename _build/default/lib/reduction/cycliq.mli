(** The [CYCLIQ] construction and the workhorse multiplier pair
    [β_s, β_b] of Section 3.1.

    For a p-ary relation [R] (p ≥ 3), [CYCLIQ(x₁,…,x_p)] asserts that every
    cyclic rotation of the tuple is an [R]-atom.  The queries

    - [β_s = CYCLIQ(x₁,x⃗) ∧ CYCLIQ(y₁,y⃗) ∧ CYCLIQ(♥,♥̄) ∧ CYCLIQ(♠,♥̄)]
      (no inequality; the two constant conjuncts pin the witness shape),
    - [β_b = CYCLIQ(x₁,x⃗) ∧ CYCLIQ(y₁,y⃗) ∧ x₁ ≠ y₁]  (one inequality)

    multiply by [(p+1)²/2p] in the sense of Definition 3 (Lemma 5): the
    witness database — one homogeneous all-♥ cyclique plus the normal
    cyclique [♠,♥,…,♥] — achieves [β_s = (p+1)²], [β_b = 2p], and no
    non-trivial database does better. *)

open Bagcq_relational
open Bagcq_cq
open Bagcq_bignum

val r_symbol : p:int -> Symbol.t
(** The p-ary relation [R]; raises [Invalid_argument] when [p < 3]. *)

val cycliq : Symbol.t -> Term.t list -> Query.t
(** [CYCLIQ] over any symbol and terms matching its arity. *)

val beta_s : p:int -> Query.t
val beta_b : p:int -> Query.t
val ratio : p:int -> Rat.t
(** [(p+1)²/2p]. *)

val witness : p:int -> Structure.t
(** The canonical structure of [CYCLIQ(♥,♥̄) ∧ CYCLIQ(♠,♥̄)] with ♥ and ♠
    declared — the database realising condition (=) of Definition 3. *)

(** {2 Cyclique analysis (Definitions 6 and 7)} *)

type kind =
  | Homogeneous  (** [|cyclass(C)| = 1] *)
  | Degenerate  (** [1 < |cyclass(C)| < p] *)
  | Normal  (** [|cyclass(C)| = p] *)

val cycliques : Structure.t -> Symbol.t -> Tuple.t list
(** All tuples all of whose rotations are atoms — exactly the images of the
    homomorphisms of [CYCLIQ]. *)

val cyclass : Tuple.t -> Tuple.t list
(** The distinct cyclic shifts of a tuple. *)

val classify : Tuple.t -> kind

val count_cycliques : Structure.t -> Symbol.t -> Nat.t

(** {2 The Lemma 9 case analysis}

    The proof of Lemma 5 rests on Lemma 9: conditioned on the two drawn
    cycliques coming from specific (unions of) cyclasses, the probability
    that their heads differ is at least [2p/(p+1)²].  The four cases
    partition all pairs:
    {ul
    {- (a) one side is a degenerate cyclass;}
    {- (b) both from [G ∪ H], where [H] is the set of homogeneous
       cycliques and [G = cyclass(\[♠,♥̄\])];}
    {- (c) two distinct normal cyclasses;}
    {- (d) within [X ∪ H] for a normal cyclass [X ≠ G].}}
    These checkers verify each conditional bound by exact counting. *)

val cyclasses : Structure.t -> Symbol.t -> Tuple.t list list
(** The ≈-classes of the cycliques of [D], each sorted. *)

val diff_fraction : Tuple.t list -> Tuple.t list -> int * int
(** [(diff, total)]: ordered pairs drawn from the two sets whose heads
    differ, out of all ordered pairs. *)

type lemma9_case = {
  label : string;
  diff : int;
  total : int;
  bound_holds : bool;  (** [diff·(p+1)² ≥ 2p·total] *)
}

val lemma9_cases : p:int -> Structure.t -> lemma9_case list option
(** All case instances for a database, or [None] when the preconditions of
    Lemma 5's proof fail (♥/♠ uninterpreted, or the pinned cycliques
    [\[♥,♥̄\]] and [\[♠,♥̄\]] absent — then [β_s(D) = 0] and there is
    nothing to prove). *)

val lemma9_partition_is_exact : p:int -> Structure.t -> bool
(** Every unordered pair of cycliques is covered by exactly one case —
    the "trivial application of the Law of Total Probability" step. *)
