(** The schemas of Section 4.3: [Σ₀] (relations [S_m], [R_d], [E]) and
    [Σ = Σ₀ ∪ {X}], together with the Arena constants. *)

open Bagcq_relational

val s_symbol : int -> Symbol.t
(** [S_m] — one binary relation per monomial. *)

val r_symbol : int -> Symbol.t
(** [R_d] — one binary relation per degree position. *)

val e_symbol : Symbol.t
(** [E] — the cycle relation of [Arena_δ]. *)

val x_symbol : Symbol.t
(** [X] — the valuation relation (Definition 14). *)

val a_const : string
(** The escape constant [a]. *)

val am_const : int -> string
(** [a_m] — one constant per monomial. *)

val bn_const : int -> string
(** [b_n] — one constant per numerical variable. *)

val sigma0 : Bagcq_poly.Lemma11.t -> Schema.t
(** [Σ₀] for an instance: its [S_m]s, [R_d]s and [E], with all Arena
    constants (including ♥ and ♠). *)

val sigma : Bagcq_poly.Lemma11.t -> Schema.t
(** [Σ = Σ₀ ∪ {X}]. *)

val sigma_rs : Bagcq_poly.Lemma11.t -> Symbol.t list
(** [Σ_RS = {S₁,…,S_m, R₁,…,R_d}] (Section 4.5). *)

val ell : Bagcq_poly.Lemma11.t -> int
(** [𝕝 = n + m + 2] — the length of the [E]-cycle in [Arena_δ]. *)
