(** The anti-cheating query [δ_b] punishing serious incorrectness
    (Section 4.6).

    With [𝕝 = n+m+2] and [L = {1,…,𝕝−1} ∪ {𝕝+1}], the query [δ_{b,l}] is
    an [E]-cycle of length [l], and [δ_b = (⋀̄_{l∈L} δ_{b,l}) ↑ ℂ].
    [Arena_δ] places exactly one [E]-self-loop (at ♥) and one [E]-cycle of
    length [𝕝], so on a correct database every [δ_{b,l}] counts exactly 1
    (Lemma 20) and [δ_b(D) = 1].  Identifying constants either merges ♥
    into the long cycle (giving an [𝕝+1]-cycle through the self-loop) or
    shortens the long cycle — either way some [l ∈ L] gains a second
    homomorphic cycle image and [δ_b(D) ≥ 2^ℂ ≥ ℂ] (Lemma 21).

    The exponent [ℂ] is far too large to materialise; [δ_b] is a
    power-product query and all reasoning goes through
    {!Bagcq_hom.Eval.pquery_geq} or the factored base count. *)

open Bagcq_bignum
open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11

val lengths : Lemma11.t -> int list
(** The set [L], ascending. *)

val delta_bl : int -> Query.t
(** [δ_{b,l}] — the [E]-cycle query of length [l ≥ 1] on variables
    [z₁ … z_l]. *)

val base : Lemma11.t -> Pquery.t
(** [⋀̄_{l∈L} δ_{b,l}] — the inner product, exponent 1. *)

val delta_b : Lemma11.t -> cc:Nat.t -> Pquery.t
(** The full [δ_b], exponent [ℂ]. *)

val base_count : Lemma11.t -> Bagcq_relational.Structure.t -> Nat.t
(** [(⋀̄_{l∈L} δ_{b,l})(D)] — the paper's punishments only need this to be
    [1] (correct) or [≥ 2] (seriously incorrect). *)
