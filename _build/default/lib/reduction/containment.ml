open Bagcq_bignum
open Bagcq_cq
module Eval = Bagcq_hom.Eval
module Morphism = Bagcq_hom.Morphism

let set_contains ~small ~big =
  if Query.has_neqs small || Query.has_neqs big then
    invalid_arg "Containment.set_contains: inequality-free CQs only";
  (* Chandra–Merlin: the canonical structure of [small] satisfies [small];
     containment holds iff it also satisfies [big] *)
  Eval.satisfies (Query.canonical_structure small) big

let bag_equivalent q1 q2 = Morphism.isomorphic q1 q2

let bag_counts ~small ~big d = (Eval.count small d, Eval.count big d)

let bag_violation ~small ~big d =
  let cs, cb = bag_counts ~small ~big d in
  Nat.compare cs cb > 0

let bag_violation_pquery ~small ~big d =
  not (Eval.pquery_geq big d (Eval.count_pquery small d))
