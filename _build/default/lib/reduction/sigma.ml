open Bagcq_relational
module Lemma11 = Bagcq_poly.Lemma11

let s_symbol m = Symbol.make (Printf.sprintf "S%d" m) 2
let r_symbol d = Symbol.make (Printf.sprintf "R%d" d) 2
let e_symbol = Symbol.make "E" 2
let x_symbol = Symbol.make "X" 2
let a_const = "a"
let am_const m = Printf.sprintf "a%d" m
let bn_const n = Printf.sprintf "b%d" n

let sigma_rs (t : Lemma11.t) =
  List.init (Lemma11.num_monomials t) (fun i -> s_symbol (i + 1))
  @ List.init t.Lemma11.degree (fun i -> r_symbol (i + 1))

let constants (t : Lemma11.t) =
  [ Consts.heart; Consts.spade; a_const ]
  @ List.init (Lemma11.num_monomials t) (fun i -> am_const (i + 1))
  @ List.init t.Lemma11.n_vars (fun i -> bn_const (i + 1))

let sigma0 t = Schema.make ~constants:(constants t) (e_symbol :: sigma_rs t)
let sigma t = Schema.add_symbol (sigma0 t) x_symbol
let ell (t : Lemma11.t) = t.Lemma11.n_vars + Lemma11.num_monomials t + 2
