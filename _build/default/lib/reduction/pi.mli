(** The polynomial-counting queries [π_s] and [π_b] of Section 4.3.

    Both are stars centred at the variable [x].  For each monomial [T_m]
    there is an [S_m]-loop at [x] and an [S_m]-ray of [c−1] edges, where
    [c] is the monomial's coefficient ([c_{s,m}] in [π_s], [c_{b,m}] in
    [π_b]) — on a correct database the ray can "escape" to the constant [a]
    at any of its edges or not at all, contributing exactly [c] counting
    options (Appendix A).  For each degree position [d] there is a ray
    [R_d(x,y_d) ∧ X(y_d,z_d)] whose [X]-edge reads off one factor of the
    monomial's value under the valuation [Ξ_D].  [π_b] additionally carries
    [d] rays [R_1(x,y'_d) ∧ X(y'_d,z'_d)] computing [Ξ_D(x₁)^d].

    Lemma 12: [π_s(D) ≤ π_b(D)] for {e every} database, witnessed by an
    onto homomorphism [π_b → π_s].
    Lemma 15: on a correct database, [π_s(D) = P_s(Ξ_D)] and
    [π_b(D) = Ξ_D(x₁)^d·P_b(Ξ_D)]. *)

open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11

val pi_s : Lemma11.t -> Query.t
val pi_b : Lemma11.t -> Query.t

val onto_witness : Lemma11.t -> Bagcq_hom.Morphism.hom
(** The explicit onto homomorphism [π_b → π_s] from the proof of Lemma 12:
    identity on [Var(π_s)], surplus ray variables to [x], the [y'_d] to
    [y₁] and the [z'_d] to [z₁].  Its existence implies
    [π_s(D) ≤ π_b(D)] for every [D]. *)
