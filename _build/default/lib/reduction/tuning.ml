open Bagcq_relational
open Bagcq_cq
open Bagcq_bignum

let p_symbol ~m =
  if m < 2 then invalid_arg "Tuning.p_symbol: m must be >= 2";
  Symbol.make "Pcyc" m

let a_symbol = Symbol.make "Acyc" 1
let b_symbol = Symbol.make "Bcyc" 1

let rotate_terms ts k =
  let n = List.length ts in
  let arr = Array.of_list ts in
  List.init n (fun i -> arr.((i + k) mod n))

let cycliq_u ~p ~u ts =
  if List.length ts <> Symbol.arity p then invalid_arg "Tuning.cycliq_u: arity mismatch";
  let n = List.length ts in
  let rotations = List.init n (fun k -> Atom.make p (rotate_terms ts k)) in
  let unary = List.map (fun t -> Atom.make u [ t ]) ts in
  Query.make (rotations @ unary)

let spade_heart_terms m =
  Term.cst Consts.spade :: List.init (m - 1) (fun _ -> Term.cst Consts.heart)

let gamma_s' ~m =
  Query.conj
    (cycliq_u ~p:(p_symbol ~m) ~u:a_symbol (spade_heart_terms m))
    (Query.make [ Atom.make b_symbol [ Term.cst Consts.spade ] ])

let gamma_s'' ~m =
  let xs = Build.vars "x" m in
  Query.conj
    (cycliq_u ~p:(p_symbol ~m) ~u:b_symbol xs)
    (Query.make [ Atom.make a_symbol [ List.hd xs ] ])

let gamma_b' ~m =
  let ys = Build.vars "y" m in
  Query.conj
    (cycliq_u ~p:(p_symbol ~m) ~u:a_symbol ys)
    (Query.make [ Atom.make b_symbol [ List.hd ys ] ])

let gamma_b'' ~m = cycliq_u ~p:(p_symbol ~m) ~u:b_symbol (Build.vars "x" m)

let gamma_s ~m = Query.conj (gamma_s' ~m) (gamma_s'' ~m)

(* γ_b' and γ_b'' use disjoint variables (y's vs x's), so ∧ and ∧̄ agree *)
let gamma_b ~m = Query.conj (gamma_b' ~m) (gamma_b'' ~m)

let ratio ~m = Rat.make (m - 1) m

let witness ~m =
  (* the second component: a B-cyclique on fresh elements, with A on all
     heads but the last *)
  let elems = List.init m (fun i -> Value.int (i + 1)) in
  let rotate l k =
    let arr = Array.of_list l in
    let n = List.length l in
    List.init n (fun i -> arr.((i + k) mod n))
  in
  let second =
    let d = Structure.empty Schema.empty in
    let d =
      List.fold_left
        (fun d k -> Structure.add_fact d (p_symbol ~m) (rotate elems k))
        d
        (List.init m (fun k -> k))
    in
    let d = List.fold_left (fun d v -> Structure.add_fact d b_symbol [ v ]) d elems in
    List.fold_left
      (fun d v -> Structure.add_fact d a_symbol [ v ])
      d
      (List.filteri (fun i _ -> i < m - 1) elems)
  in
  let first = Query.canonical_structure (gamma_s' ~m) in
  let d = Structure.union first second in
  let d = Structure.declare_constant d Consts.heart in
  Structure.declare_constant d Consts.spade

let cyclass tup =
  let n = Tuple.arity tup in
  Tuple.Set.elements (Tuple.Set.of_list (List.init n (fun k -> Tuple.rotate tup k)))

let u_cycliques d ~p ~u =
  List.filter
    (fun tup ->
      List.for_all (fun shift -> Structure.mem_atom d p shift) (cyclass tup)
      && Array.for_all (fun v -> Structure.mem_atom d u (Tuple.make [ v ])) tup)
    (Structure.tuples d p)

let u_cycliques_v d ~p ~u ~v =
  List.filter
    (fun tup -> Structure.mem_atom d v (Tuple.make [ Tuple.get tup 0 ]))
    (u_cycliques d ~p ~u)

let count d q = Bagcq_hom.Eval.count q d
