(** The Ioannidis–Ramakrishnan reduction [14]: undecidability of
    [QCP^bag_UCQ], the first of the paper's "negative side" results
    (Section 1.1).

    A monomial translates into a CQ in the most natural way — a product of
    out-degrees — and a sum of monomials into a union of CQs.  Fix
    constants [b₁ … b_n] and one binary relation [X]; a database determines
    the valuation [Ξ_D(x_i) =] number of [X]-edges leaving [b_i] (the same
    encoding as Definition 14).  The monomial [x_{i₁}·…·x_{i_d}] becomes
    [⋀̄_j ∃z X(b_{i_j}, z)], whose count is exactly the monomial's value at
    [Ξ_D]; a coefficient [c] becomes [c] copies of the disjunct.  Hence for
    polynomials [P_s, P_b] with natural coefficients:

    [UCQ(P_s) ⊆_bag UCQ(P_b)]  ⟺  [∀Ξ ∈ ℕⁿ. P_s(Ξ) ≤ P_b(Ξ)],

    with {e no} anti-cheating machinery needed — every database over the
    schema denotes a valuation, and nothing else about it matters.  With
    the Lemma 25 split ([P₁ = Q'₋+1], [P₂ = Q'₊]) this decides Hilbert's
    10th problem, so [QCP^bag_UCQ] is undecidable. *)

open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq
module Polynomial = Bagcq_poly.Polynomial

val ucq_of_polynomial : Polynomial.t -> Ucq.t
(** Raises [Invalid_argument] on negative coefficients. *)

val valuation_db : int array -> Structure.t
(** The database denoting a valuation (entry [i] = [Ξ(x_{i+1})] ≥ 0). *)

val extract_valuation : n_vars:int -> Structure.t -> int array

val count_equals_value : Polynomial.t -> int array -> bool
(** The reduction invariant, checkable: [UCQ(P)(valuation_db Ξ) = P(Ξ)]. *)

val reduce : Polynomial.t -> Ucq.t * Ucq.t
(** The full chain from an instance [Q] of Hilbert's 10th problem:
    [(UCQ(P₁), UCQ(P₂))] with [P₁ = Q'₋ + 1], [P₂ = Q'₊] (Lemma 25), such
    that the containment [UCQ(P₁) ⊆_bag UCQ(P₂)] fails iff [Q] has a zero
    over ℕ. *)

val violation_db : Polynomial.t -> zero:int array -> Structure.t
(** The valuation database witnessing the containment violation, from a
    zero of [Q]. *)

val counts_on : Ucq.t * Ucq.t -> Structure.t -> Nat.t * Nat.t
