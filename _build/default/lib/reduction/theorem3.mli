(** Theorem 3: absorbing the multiplicative constant into a single
    inequality (Section 3).

    Given [c] and inequality-free boolean CQs [φ_s, φ_b] whose schema is
    disjoint from the multiplier gadget's, the assembly
    [ψ_s = α_s ∧̄ φ_s] (no inequality) and [ψ_b = α_b ∧̄ φ_b] (exactly one
    inequality) satisfies: some non-trivial [D] has [c·φ_s(D) > φ_b(D)]
    iff some non-trivial [D] has [ψ_s(D) > ψ_b(D)].  This improves the
    main result of Jayram–Kolaitis–Vee [15] from 59¹⁰ inequalities to
    one. *)

open Bagcq_relational
open Bagcq_cq

type t = private {
  c : int;
  alpha : Multiplier.t;
  psi_s : Pquery.t;  (** [α_s ∧̄ φ_s] — inequality-free *)
  psi_b : Pquery.t;  (** [α_b ∧̄ φ_b] — exactly one inequality *)
}

val reduce : c:int -> phi_s:Pquery.t -> phi_b:Pquery.t -> t
(** Raises [Invalid_argument] when [c < 2], when either φ carries an
    inequality, or when a φ uses one of the gadget's relation names
    ([Rcyc], [Pcyc], [Acyc], [Bcyc]). *)

val reduce_queries : c:int -> phi_s:Query.t -> phi_b:Query.t -> t

val of_theorem1 : Theorem1.t -> (t, string) result
(** Chain with Theorem 1's output: [c] must fit in a machine integer.
    (It always does for the library's instances; the paper's ℂ is a
    natural number with no size bound.) *)

val combine_witness : t -> Structure.t -> Structure.t
(** Direction (i) ⇒ (ii): a non-trivial [D₁] with [c·φ_s(D₁) > φ_b(D₁)]
    extends, by union with the multiplier's witness, to a database where
    [ψ_s > ψ_b]. *)

val counts_on : t -> Structure.t -> Bagcq_bignum.Nat.t * Bagcq_bignum.Nat.t
(** [(ψ_s(D), ψ_b(D))]. *)

val holds_on : t -> Structure.t -> bool
(** [ψ_s(D) ≤ ψ_b(D)]. *)

val ban_constants : t -> Query.t * Query.t
(** The "hard" constants ban of Section 2.3: every constant (♥ and ♠
    included) is replaced by an existentially quantified variable, and the
    s-query gains the single inequality [♥ ≠ ♠] that used to be the
    non-triviality side condition.  The paper notes Theorem 3 survives in
    this form — both queries then carry exactly one inequality and no
    constants.  Requires the power-product queries to be flattenable
    (always true for {!reduce_queries} outputs; raises [Failure] when an
    exponent from a chained Theorem 1 is too large). *)
