(** Valuations of the numerical variables and their encoding as databases
    (Definition 14).

    The relation [X] encodes a valuation: [Ξ_D(x_i)] is the number of
    [X]-edges leaving [b_i].  Every valuation is realised by a correct
    database — [D_Arena] plus fresh [X]-targets — and conversely a correct
    database determines its valuation. *)

open Bagcq_relational
module Lemma11 = Bagcq_poly.Lemma11

val correct_db : Lemma11.t -> int array -> Structure.t
(** [correct_db t Ξ] — the correct database realising [Ξ] (array entry
    [i] is [Ξ(x_{i+1})], all entries ≥ 0; raises [Invalid_argument] on
    length or sign mismatch). *)

val extract : Lemma11.t -> Structure.t -> int array
(** [Ξ_D] — requires every [b_i] to be interpreted in [D]; raises
    [Invalid_argument] otherwise. *)
