(** The anti-cheating query [ζ_b] punishing slight incorrectness
    (Section 4.5).

    For each relation [P ∈ Σ_RS], [ζ^P = P(w,v) ↑ 𝕜] counts the atoms of
    [P] to the power [𝕜], and [ζ_b = ⋀̄_P ζ^P].  The exponent [𝕜] is the
    least number with [((𝕛+1)/𝕛)^𝕜 ≥ c], where [𝕛] is the largest number
    of atoms a [Σ_RS]-relation has in [Arena] — so one single extra atom
    anywhere already inflates [ζ_b] by a factor ≥ [c] (Lemma 18).

    On a correct database [ζ_b] is the constant
    [ℂ₁ = ζ_b(D_Arena) = ∏_P (𝕛^P)^𝕜] (Lemma 17), and the reduction's
    output constant is [ℂ = c·ℂ₁]. *)

open Bagcq_bignum
open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11

type t = private {
  instance : Lemma11.t;
  k : int;  (** 𝕜 *)
  j : int;  (** 𝕛 = max_P 𝕛^P *)
  zeta_b : Pquery.t;
  c1 : Nat.t;  (** ℂ₁ = ζ_b(D_Arena) *)
  cc : Nat.t;  (** ℂ = c·ℂ₁ *)
}

val make : Lemma11.t -> t

val atoms_in_arena : Lemma11.t -> Bagcq_relational.Symbol.t -> int
(** [𝕛^P]: the number of atoms of [P] in [Arena]. *)

val count : t -> Bagcq_relational.Structure.t -> Nat.t
(** [ζ_b(D)], exactly. *)
