(** Theorem 5 / Lemmas 23–24: inequalities in the s-query do not add
    power.

    Lemma 23: for [ψ_s] with inequalities and [ψ_b] without, a violation
    [ψ_s(D) > ψ_b(D)] exists iff one exists for the inequality-stripped
    [ψ_s'].  The constructive direction takes a witness [D₀] for [ψ_s'],
    amplifies it with products ([ψ'_s/ψ_b] ratio grows as a power —
    Lemma 22(ii)) and blows it up by 2 so that violated inequalities can
    be repaired by flipping copies (Lemma 24:
    [ψ_s(blowup(D,2)) ≥ ψ_s'(blowup(D,2)) / 2^p] for [p] inequalities). *)

open Bagcq_relational
open Bagcq_cq

val lemma24_lower_bound : Query.t -> Structure.t -> bool
(** Check [2^p·ψ_s(blowup(D,2)) ≥ ψ_s'(blowup(D,2))] by exact counting
    ([p] = number of inequalities of the query). *)

val transfer_witness :
  ?max_k:int -> psi_s:Query.t -> psi_b:Query.t -> Structure.t -> Structure.t option
(** [transfer_witness ~psi_s ~psi_b d0]: given [ψ_s'(D₀) > ψ_b(D₀)],
    construct a database where [ψ_s] itself (inequalities included) beats
    [ψ_b].  Tries [D = blowup(D₀^{×k}, 2)] for [k = 1, 2, …, max_k]
    (default 6), verifying each candidate by exact counting; the paper's
    bound guarantees success once [ψ_s'(D₀^{×k}) > 2^{j+p}·ψ_b(D₀^{×k})]
    with [j = |Var(ψ_b)|] and [p] the number of inequalities.  Returns
    [None] if [d0] is not actually a witness for the stripped query, or if
    [max_k] is exhausted (never observed within the paper's bound).
    Raises [Invalid_argument] when [ψ_b] has inequalities. *)

val equivalence_witnessed :
  psi_s:Query.t -> psi_b:Query.t -> Structure.t -> bool
(** The checkable content of Lemma 23 at one structure: if [D₀] witnesses
    [ψ_s'(D₀) > ψ_b(D₀)] then {!transfer_witness} produces a verified
    witness for [ψ_s] — returns false only on a genuine failure, true when
    [D₀] was no witness at all (nothing to transfer). *)
