open Bagcq_bignum
open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11
module Eval = Bagcq_hom.Eval

type t = {
  instance : Lemma11.t;
  cc : Nat.t;
  arena : Query.t;
  pi_s : Query.t;
  pi_b : Query.t;
  zeta : Zeta.t;
  delta_b : Pquery.t;
  phi_s : Pquery.t;
  phi_b : Pquery.t;
}

let reduce instance =
  let arena = Arena.arena instance in
  let pi_s = Pi.pi_s instance and pi_b = Pi.pi_b instance in
  let zeta = Zeta.make instance in
  let cc = zeta.Zeta.cc in
  let delta_b = Delta.delta_b instance ~cc in
  let phi_s = Pquery.dconj (Pquery.of_query arena) (Pquery.of_query pi_s) in
  let phi_b = Pquery.dconj (Pquery.of_query pi_b) (Pquery.dconj zeta.Zeta.zeta_b delta_b) in
  { instance; cc; arena; pi_s; pi_b; zeta; delta_b; phi_s; phi_b }

let of_polynomial q = reduce (Bagcq_poly.Transform.reduce q)

let phi_s_count t d = Eval.count_pquery t.phi_s d
let lhs t d = Nat.mul t.cc (phi_s_count t d)
let holds_on t d = Eval.pquery_geq t.phi_b d (lhs t d)
let violating_db t xs = Valuation.correct_db t.instance xs
let classify t d = Arena.classify t.instance d
