(** The fine-tuning pair [γ_s, γ_b] of Section 3.2, multiplying by
    [(m−1)/m] — strictly below 1, which is why no inequality is needed in
    [γ_b].

    Over an m-ary relation [P] and unary relations [A], [B]:
    - [CYCLIQ_U(x₁,…,x_m)] is the [P]-cyclique condition plus [U(xᵢ)] for
      every [i];
    - [γ_s = γ_s' ∧ γ_s''] with [γ_s' = CYCLIQ_A(♠,♥̄) ∧ B(♠)] (constants
      only) and [γ_s'' = CYCLIQ_B(x₁,x⃗) ∧ A(x₁)];
    - [γ_b = γ_b' ∧ γ_b''] with [γ_b' = CYCLIQ_A(y₁,y⃗) ∧ B(y₁)] and
      [γ_b'' = CYCLIQ_B(x₁,x⃗)].

    Lemma 10: the pair multiplies by [(m−1)/m]; the witness is the disjoint
    union of the canonical structure of [γ_s'] and of
    [CYCLIQ_B(x₁,x⃗) ∧ A(x₁) ∧ … ∧ A(x_{m−1})]. *)

open Bagcq_relational
open Bagcq_cq
open Bagcq_bignum

val p_symbol : m:int -> Symbol.t
(** The m-ary relation [P]; raises [Invalid_argument] when [m < 2]. *)

val a_symbol : Symbol.t
val b_symbol : Symbol.t

val cycliq_u : p:Symbol.t -> u:Symbol.t -> Term.t list -> Query.t
(** [CYCLIQ_U] for any m-ary [p] and unary [u]. *)

val gamma_s : m:int -> Query.t
val gamma_b : m:int -> Query.t
val ratio : m:int -> Rat.t
(** [(m−1)/m]. *)

val witness : m:int -> Structure.t

(** {2 U-cyclique analysis} *)

val u_cycliques : Structure.t -> p:Symbol.t -> u:Symbol.t -> Tuple.t list
(** Cycliques of [P] all of whose elements satisfy [U]. *)

val u_cycliques_v :
  Structure.t -> p:Symbol.t -> u:Symbol.t -> v:Symbol.t -> Tuple.t list
(** U-cycliques whose head additionally satisfies [V] (the "U-cyclique^V"
    of the proof of Lemma 10). *)

val count : Structure.t -> Query.t -> Nat.t
(** Convenience re-export of {!Bagcq_hom.Eval.count} with flipped argument
    order, used by the examples. *)
