lib/reduction/theorem1.mli: Arena Bagcq_bignum Bagcq_cq Bagcq_poly Bagcq_relational Nat Pquery Query Structure Zeta
