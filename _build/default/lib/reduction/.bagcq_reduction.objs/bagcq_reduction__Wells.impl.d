lib/reduction/wells.ml: Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_relational Consts List Nat Query Schema String Structure Symbol Tuple Value
