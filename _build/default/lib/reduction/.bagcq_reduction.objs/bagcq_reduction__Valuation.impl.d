lib/reduction/valuation.ml: Arena Array Bagcq_poly Bagcq_relational List Sigma Structure Tuple Value
