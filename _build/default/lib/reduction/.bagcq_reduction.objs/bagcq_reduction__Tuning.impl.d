lib/reduction/tuning.ml: Array Atom Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_relational Build Consts List Query Rat Schema Structure Symbol Term Tuple Value
