lib/reduction/multiplier.mli: Bagcq_bignum Bagcq_cq Bagcq_relational Nat Query Rat Structure
