lib/reduction/zeta.ml: Arena Atom Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_poly Bagcq_relational List Nat Pquery Query Sigma Stdlib Structure Term
