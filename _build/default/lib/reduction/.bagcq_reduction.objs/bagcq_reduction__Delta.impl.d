lib/reduction/delta.ml: Bagcq_cq Bagcq_hom Bagcq_poly Build List Pquery Query Sigma
