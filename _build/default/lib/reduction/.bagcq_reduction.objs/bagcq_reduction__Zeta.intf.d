lib/reduction/zeta.mli: Bagcq_bignum Bagcq_cq Bagcq_poly Bagcq_relational Nat Pquery
