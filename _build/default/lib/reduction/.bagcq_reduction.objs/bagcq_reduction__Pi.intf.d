lib/reduction/pi.mli: Bagcq_cq Bagcq_hom Bagcq_poly Query
