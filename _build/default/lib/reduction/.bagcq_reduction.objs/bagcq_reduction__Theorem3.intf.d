lib/reduction/theorem3.mli: Bagcq_bignum Bagcq_cq Bagcq_relational Multiplier Pquery Query Structure Theorem1
