lib/reduction/wells.mli: Bagcq_bignum Bagcq_cq Bagcq_relational Nat Pquery Query Schema Structure
