lib/reduction/ioannidis.mli: Bagcq_bignum Bagcq_cq Bagcq_poly Bagcq_relational Nat Structure Ucq
