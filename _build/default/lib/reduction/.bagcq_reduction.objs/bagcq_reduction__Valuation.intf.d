lib/reduction/valuation.mli: Bagcq_poly Bagcq_relational Structure
