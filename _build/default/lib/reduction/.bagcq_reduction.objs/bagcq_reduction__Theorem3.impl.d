lib/reduction/theorem3.ml: Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_relational Consts List Multiplier Nat Pquery Printf Query Schema Structure Symbol Theorem1
