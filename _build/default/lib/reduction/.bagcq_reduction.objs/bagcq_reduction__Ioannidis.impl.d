lib/reduction/ioannidis.ml: Array Atom Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_poly Bagcq_relational List Nat Printf Query Schema Stdlib Structure Symbol Term Tuple Ucq Value
