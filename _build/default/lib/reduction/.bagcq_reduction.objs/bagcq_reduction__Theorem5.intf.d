lib/reduction/theorem5.mli: Bagcq_cq Bagcq_relational Query Structure
