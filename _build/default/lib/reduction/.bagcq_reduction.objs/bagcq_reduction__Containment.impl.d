lib/reduction/containment.ml: Bagcq_bignum Bagcq_cq Bagcq_hom Nat Query
