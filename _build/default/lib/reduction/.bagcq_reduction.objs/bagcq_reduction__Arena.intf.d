lib/reduction/arena.mli: Bagcq_cq Bagcq_poly Bagcq_relational Query Structure
