lib/reduction/sigma.ml: Bagcq_poly Bagcq_relational Consts List Printf Schema Symbol
