lib/reduction/theorem5.ml: Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_relational Nat Ops Query
