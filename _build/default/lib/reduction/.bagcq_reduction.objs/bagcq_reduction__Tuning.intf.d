lib/reduction/tuning.mli: Bagcq_bignum Bagcq_cq Bagcq_relational Nat Query Rat Structure Symbol Term Tuple
