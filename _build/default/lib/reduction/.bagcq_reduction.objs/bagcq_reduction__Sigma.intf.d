lib/reduction/sigma.mli: Bagcq_poly Bagcq_relational Schema Symbol
