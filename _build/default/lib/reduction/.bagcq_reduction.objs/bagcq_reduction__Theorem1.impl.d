lib/reduction/theorem1.ml: Arena Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_poly Delta Nat Pi Pquery Query Valuation Zeta
