lib/reduction/multiplier.ml: Bagcq_bignum Bagcq_cq Bagcq_hom Bagcq_relational Cycliq Nat Query Rat Schema Structure Tuning
