lib/reduction/pi.ml: Array Atom Bagcq_cq Bagcq_poly List Map Printf Query Sigma String Term
