lib/reduction/arena.ml: Atom Bagcq_cq Bagcq_hom Bagcq_poly Bagcq_relational Build Consts List Query Schema Sigma Structure Term Tuple Value
