lib/reduction/cycliq.ml: Array Atom Bagcq_bignum Bagcq_cq Bagcq_relational Build Consts List Nat Query Rat Structure Symbol Term Tuple Value
