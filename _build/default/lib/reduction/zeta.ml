open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq
module Lemma11 = Bagcq_poly.Lemma11
module Eval = Bagcq_hom.Eval

type t = {
  instance : Lemma11.t;
  k : int;
  j : int;
  zeta_b : Pquery.t;
  c1 : Nat.t;
  cc : Nat.t;
}

let atoms_in_arena t sym = Structure.atom_count (Arena.d_arena t) sym

(* the least 𝕜 with (𝕛+1)^𝕜 ≥ c·𝕛^𝕜, exactly *)
let least_k ~j ~c =
  let rec go k up low =
    (* up = (j+1)^k, low = j^k *)
    if Nat.compare up (Nat.mul_int low c) >= 0 then k
    else go (k + 1) (Nat.mul_int up (j + 1)) (Nat.mul_int low j)
  in
  go 0 Nat.one Nat.one

let edge_query sym = Query.make [ Atom.make sym [ Term.var "w"; Term.var "v" ] ]

let make (instance : Lemma11.t) =
  let syms = Sigma.sigma_rs instance in
  let j = List.fold_left (fun acc sym -> Stdlib.max acc (atoms_in_arena instance sym)) 1 syms in
  let k = least_k ~j ~c:instance.Lemma11.c in
  let zeta_b =
    List.fold_left
      (fun acc sym -> Pquery.dconj acc (Pquery.power_int (Pquery.of_query (edge_query sym)) k))
      Pquery.one syms
  in
  let c1 = Eval.count_pquery zeta_b (Arena.d_arena instance) in
  let cc = Nat.mul_int c1 instance.Lemma11.c in
  { instance; k; j; zeta_b; c1; cc }

let count t d = Eval.count_pquery t.zeta_b d
