open Bagcq_relational
open Bagcq_cq
open Bagcq_bignum

let r_symbol ~p =
  if p < 3 then invalid_arg "Cycliq.r_symbol: p must be >= 3";
  Symbol.make "Rcyc" p

let rotate_terms ts k =
  let n = List.length ts in
  let arr = Array.of_list ts in
  List.init n (fun i -> arr.((i + k) mod n))

let cycliq sym ts =
  if List.length ts <> Symbol.arity sym then invalid_arg "Cycliq.cycliq: arity mismatch";
  let n = List.length ts in
  Query.make (List.init n (fun k -> Atom.make sym (rotate_terms ts k)))

(* [♠,♥,…,♥]: the normal cyclique pinned by the constants in β_s *)
let spade_heart_terms p =
  Term.cst Consts.spade :: List.init (p - 1) (fun _ -> Term.cst Consts.heart)

let heart_terms p = List.init p (fun _ -> Term.cst Consts.heart)

let beta_s ~p =
  let r = r_symbol ~p in
  let free stem = Build.vars stem p in
  Query.conj
    (Query.conj (cycliq r (free "x")) (cycliq r (free "y")))
    (Query.conj (cycliq r (heart_terms p)) (cycliq r (spade_heart_terms p)))

let beta_b ~p =
  let r = r_symbol ~p in
  let xs = Build.vars "x" p and ys = Build.vars "y" p in
  Query.make
    ~neqs:[ (List.hd xs, List.hd ys) ]
    (Query.atoms (Query.conj (cycliq r xs) (cycliq r ys)))

let ratio ~p = Rat.make ((p + 1) * (p + 1)) (2 * p)

let witness ~p =
  let q = Query.conj (cycliq (r_symbol ~p) (heart_terms p)) (cycliq (r_symbol ~p) (spade_heart_terms p)) in
  let d = Query.canonical_structure q in
  let d = Structure.declare_constant d Consts.heart in
  Structure.declare_constant d Consts.spade

type kind =
  | Homogeneous
  | Degenerate
  | Normal

let cyclass tup =
  let n = Tuple.arity tup in
  let shifts = List.init n (fun k -> Tuple.rotate tup k) in
  Tuple.Set.elements (Tuple.Set.of_list shifts)

let classify tup =
  let size = List.length (cyclass tup) in
  if size = 1 then Homogeneous else if size < Tuple.arity tup then Degenerate else Normal

let cycliques d sym =
  List.filter
    (fun tup -> List.for_all (fun shift -> Structure.mem_atom d sym shift) (cyclass tup))
    (Structure.tuples d sym)

let count_cycliques d sym = Nat.of_int (List.length (cycliques d sym))

let cyclasses d sym =
  let all = Tuple.Set.of_list (cycliques d sym) in
  let rec group seen acc = function
    | [] -> List.rev acc
    | tup :: rest ->
        if Tuple.Set.mem tup seen then group seen acc rest
        else begin
          let cls = List.filter (fun t -> Tuple.Set.mem t all) (cyclass tup) in
          let seen = List.fold_left (fun s t -> Tuple.Set.add t s) seen cls in
          group seen (cls :: acc) rest
        end
  in
  group Tuple.Set.empty [] (Tuple.Set.elements all)

let diff_fraction xs ys =
  let diff =
    List.fold_left
      (fun acc x ->
        List.fold_left
          (fun acc y ->
            if Value.equal (Tuple.get x 0) (Tuple.get y 0) then acc else acc + 1)
          acc ys)
      0 xs
  in
  (diff, List.length xs * List.length ys)

type lemma9_case = {
  label : string;
  diff : int;
  total : int;
  bound_holds : bool;
}

let make_case ~p label xs ys =
  let diff, total = diff_fraction xs ys in
  { label; diff; total; bound_holds = diff * (p + 1) * (p + 1) >= 2 * p * total }

let lemma9_cases ~p d =
  let sym = r_symbol ~p in
  match (Structure.interpretation d Consts.heart, Structure.interpretation d Consts.spade) with
  | Some heart, Some spade when not (Value.equal heart spade) ->
      let heart_tuple = Tuple.make (List.init p (fun _ -> heart)) in
      let spade_tuple =
        Tuple.make (spade :: List.init (p - 1) (fun _ -> heart))
      in
      let all_classes = cyclasses d sym in
      let mem_class tup cls = List.exists (Tuple.equal tup) cls in
      if
        (not (List.exists (mem_class heart_tuple) all_classes))
        || not (List.exists (mem_class spade_tuple) all_classes)
      then None
      else begin
        let h =
          List.concat_map (fun cls -> if List.length cls = 1 then cls else []) all_classes
        in
        let g = List.find (mem_class spade_tuple) all_classes in
        let degenerate cls = classify (List.hd cls) = Degenerate in
        let normal cls = classify (List.hd cls) = Normal in
        let gh = g @ h in
        let cases = ref [] in
        (* (a): X degenerate, Y any cyclass *)
        List.iter
          (fun x ->
            if degenerate x then
              List.iter
                (fun y -> cases := make_case ~p "(a) degenerate" x y :: !cases)
                all_classes)
          all_classes;
        (* (b): X = Y = G ∪ H *)
        cases := make_case ~p "(b) G∪H" gh gh :: !cases;
        (* (c): distinct normal cyclasses *)
        List.iteri
          (fun i x ->
            List.iteri
              (fun j y ->
                if i < j && normal x && normal y then
                  cases := make_case ~p "(c) two normals" x y :: !cases)
              all_classes)
          all_classes;
        (* (d): X normal, X ≠ G, within X ∪ H *)
        List.iter
          (fun x ->
            if normal x && not (x == g) then begin
              let xh = x @ h in
              cases := make_case ~p "(d) X∪H" xh xh :: !cases
            end)
          all_classes;
        Some (List.rev !cases)
      end
  | _ -> None

let lemma9_partition_is_exact ~p d =
  (* count unordered cyclique pairs covered by the four events; they must
     cover each pair exactly once.  Events in unordered terms:
     (a) {c,c'} with min one from a degenerate class (other side any class,
         counted once per unordered pair);
     (b) both in G∪H;
     (c) one in normal X, other in distinct normal Y (neither degenerate);
     (d) both in X∪H for the normal class X ∌ G of the non-H element(s). *)
  let sym = r_symbol ~p in
  match (Structure.interpretation d Consts.heart, Structure.interpretation d Consts.spade) with
  | Some heart, Some spade when not (Value.equal heart spade) -> (
      let spade_tuple = Tuple.make (spade :: List.init (p - 1) (fun _ -> heart)) in
      let all_classes = cyclasses d sym in
      let mem_class tup cls = List.exists (Tuple.equal tup) cls in
      match List.find_opt (mem_class spade_tuple) all_classes with
      | None -> true
      | Some g ->
          let class_of tup = List.find (mem_class tup) all_classes in
          let kind tup = classify tup in
          let in_h tup = kind tup = Homogeneous in
          let in_g tup = mem_class tup g in
          let cycliques_list = List.concat all_classes in
          let covering c1 c2 =
            let deg t = kind t = Degenerate in
            let cases = ref 0 in
            if deg c1 || deg c2 then incr cases;
            if (in_g c1 || in_h c1) && (in_g c2 || in_h c2) then incr cases;
            (* (c): distinct normal classes, neither being... (c) is about
               two distinct normal cyclasses — G is normal too *)
            if
              kind c1 = Normal && kind c2 = Normal
              && not (class_of c1 == class_of c2)
              && not (in_g c1 && in_g c2)
            then begin
              (* exclude pairs already counted by (d)-style grouping:
                 (c) applies when the two classes are distinct normals,
                 except that pairing a normal X≠G with H is case (d) and
                 pairing anything with G's class is (c) or (b) *)
              incr cases
            end;
            (* (d): both in X ∪ H where X is the normal class ≠ G of the
               non-homogeneous member(s) *)
            let d_case =
              if in_h c1 && in_h c2 then false (* that is (b) *)
              else begin
                let xs =
                  List.filter (fun c -> not (in_h c)) [ c1; c2 ]
                  |> List.map class_of
                in
                match xs with
                | [ x ] -> kind (List.hd x) = Normal && not (x == g)
                | [ x; y ] -> x == y && kind (List.hd x) = Normal && not (x == g)
                | _ -> false
              end
            in
            if d_case then incr cases;
            !cases = 1
          in
          List.for_all
            (fun c1 -> List.for_all (fun c2 -> covering c1 c2) cycliques_list)
            cycliques_list)
  | _ -> true
