open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq
module Eval = Bagcq_hom.Eval

let star = Value.int 1

let well_of_positivity schema =
  let with_atoms =
    List.fold_left
      (fun d sym ->
        Structure.add_atom d sym (Tuple.make (List.init (Symbol.arity sym) (fun _ -> star))))
      (Structure.empty schema) (Schema.symbols schema)
  in
  let constants =
    Consts.heart :: Consts.spade :: Schema.constants schema
    |> List.sort_uniq String.compare
  in
  List.fold_left (fun d c -> Structure.bind_constant d c star) with_atoms constants

let count_on_well q = Eval.count q (well_of_positivity (Query.schema q))

module Theorem2 = struct
  let holds_on ~c ~c' ~phi_s ~phi_b d =
    let lhs = Nat.mul_int (Eval.count_pquery phi_s d) c in
    Eval.pquery_geq phi_b d (Nat.sub_saturating lhs c')

  let required_slack ~c ~phi_s ~phi_b =
    let schema = Schema.union (Query.schema phi_s) (Query.schema phi_b) in
    let well = well_of_positivity schema in
    Nat.sub_saturating (Nat.mul_int (Eval.count phi_s well) c) (Eval.count phi_b well)
end

module Theorem4 = struct
  let holds_on ~rho_s ~rho_b d =
    Nat.compare (Eval.count rho_s d) (Nat.max Nat.one (Eval.count rho_b d)) <= 0

  let max1_needed ~rho_s ~rho_b =
    let schema = Schema.union (Query.schema rho_s) (Query.schema rho_b) in
    let well = well_of_positivity schema in
    (not (Nat.is_zero (Eval.count rho_s well))) && Nat.is_zero (Eval.count rho_b well)
end
