open Bagcq_relational
module Lemma11 = Bagcq_poly.Lemma11

let correct_db (t : Lemma11.t) xs =
  if Array.length xs <> t.Lemma11.n_vars then
    invalid_arg "Valuation.correct_db: valuation length mismatch";
  Array.iter (fun v -> if v < 0 then invalid_arg "Valuation.correct_db: negative value") xs;
  let d = Arena.d_arena t in
  let fresh = ref 0 in
  let add_edges d i count =
    let source = Structure.interpret_exn d (Sigma.bn_const (i + 1)) in
    let rec go d j =
      if j = count then d
      else begin
        incr fresh;
        go (Structure.add_fact d Sigma.x_symbol [ source; Value.int !fresh ]) (j + 1)
      end
    in
    go d 0
  in
  Array.to_list xs
  |> List.mapi (fun i v -> (i, v))
  |> List.fold_left (fun d (i, v) -> add_edges d i v) d

let extract (t : Lemma11.t) d =
  Array.init t.Lemma11.n_vars (fun i ->
      match Structure.interpretation d (Sigma.bn_const (i + 1)) with
      | None -> invalid_arg "Valuation.extract: b_i not interpreted"
      | Some source ->
          List.length
            (List.filter
               (fun tup -> Value.equal (Tuple.get tup 0) source)
               (Structure.tuples d Sigma.x_symbol)))
