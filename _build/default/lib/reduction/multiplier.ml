open Bagcq_relational
open Bagcq_cq
open Bagcq_bignum
module Eval = Bagcq_hom.Eval

type t = {
  qs : Query.t;
  qb : Query.t;
  ratio : Rat.t;
  witness : Structure.t;
}

let counts_on t d = (Eval.count t.qs d, Eval.count t.qb d)

let eq_holds ~qs ~qb ~ratio d =
  let cs = Eval.count qs d and cb = Eval.count qb d in
  (not (Nat.is_zero cs)) && Rat.eq_scaled (Rat.inv ratio) cs cb
(* ϱ_s = q·ϱ_b  ⟺  (1/q)·ϱ_s = ϱ_b *)

let make ~qs ~qb ~ratio ~witness =
  if not (Structure.is_nontrivial witness) then
    invalid_arg "Multiplier.make: witness must be non-trivial";
  if not (eq_holds ~qs ~qb ~ratio witness) then
    invalid_arg "Multiplier.make: witness does not realise condition (=)";
  { qs; qb; ratio; witness }

let beta ~p =
  make ~qs:(Cycliq.beta_s ~p) ~qb:(Cycliq.beta_b ~p) ~ratio:(Cycliq.ratio ~p)
    ~witness:(Cycliq.witness ~p)

let gamma ~m =
  make ~qs:(Tuning.gamma_s ~m) ~qb:(Tuning.gamma_b ~m) ~ratio:(Tuning.ratio ~m)
    ~witness:(Tuning.witness ~m)

let compose t1 t2 =
  if not (Schema.disjoint (Query.schema t1.qs) (Query.schema t2.qs)) then
    invalid_arg "Multiplier.compose: s-query schemas overlap";
  if not (Schema.disjoint (Query.schema t1.qb) (Query.schema t2.qb)) then
    invalid_arg "Multiplier.compose: b-query schemas overlap";
  make ~qs:(Query.dconj t1.qs t2.qs) ~qb:(Query.dconj t1.qb t2.qb)
    ~ratio:(Rat.mul t1.ratio t2.ratio)
    ~witness:(Structure.union t1.witness t2.witness)

let alpha ~c =
  if c < 2 then invalid_arg "Multiplier.alpha: c must be >= 2";
  let p = (2 * c) - 1 in
  compose (beta ~p) (gamma ~m:(p + 1))

let check_eq t = eq_holds ~qs:t.qs ~qb:t.qb ~ratio:t.ratio t.witness

let check_le_on t d =
  if not (Structure.is_nontrivial d) then true
  else begin
    let cs, cb = counts_on t d in
    (* ϱ_s ≤ q·ϱ_b  ⟺  den·ϱ_s ≤ num·ϱ_b *)
    Nat.compare (Nat.mul_int cs (Rat.den t.ratio)) (Nat.mul_int cb (Rat.num t.ratio)) <= 0
  end
