open Bagcq_bignum
open Bagcq_relational
open Bagcq_cq
module Polynomial = Bagcq_poly.Polynomial
module Monomial = Bagcq_poly.Monomial
module Eval = Bagcq_hom.Eval

let x_symbol = Symbol.make "Xir" 2
let b_const n = Printf.sprintf "bir%d" n

(* x_{i₁}·…·x_{i_d} ↦ ⋀̄_j X(b_{i_j}, z_j); the constant monomial is the
   empty conjunction, counting 1 *)
let cq_of_monomial m =
  let atoms =
    List.mapi
      (fun j i ->
        Atom.make x_symbol [ Term.cst (b_const i); Term.var (Printf.sprintf "z%d" (j + 1)) ])
      (Monomial.to_list m)
  in
  Query.make atoms

let ucq_of_polynomial p =
  List.fold_left
    (fun acc (c, m) ->
      if c < 0 then invalid_arg "Ioannidis.ucq_of_polynomial: negative coefficient";
      Ucq.union acc (Ucq.scale c (cq_of_monomial m)))
    (Ucq.of_disjuncts []) (Polynomial.terms p)

let valuation_db xs =
  let base = Structure.empty (Schema.make [ x_symbol ]) in
  let fresh = ref 0 in
  let add_edges d i count =
    let d = Structure.bind_constant d (b_const (i + 1)) (Value.sym (b_const (i + 1))) in
    let rec go d j =
      if j = count then d
      else begin
        incr fresh;
        go
          (Structure.add_fact d x_symbol [ Value.sym (b_const (i + 1)); Value.int !fresh ])
          (j + 1)
      end
    in
    go d 0
  in
  Array.to_list xs
  |> List.mapi (fun i v ->
         if v < 0 then invalid_arg "Ioannidis.valuation_db: negative value";
         (i, v))
  |> List.fold_left (fun d (i, v) -> add_edges d i v) base

let extract_valuation ~n_vars d =
  Array.init n_vars (fun i ->
      match Structure.interpretation d (b_const (i + 1)) with
      | None -> 0
      | Some source ->
          List.length
            (List.filter
               (fun tup -> Value.equal (Tuple.get tup 0) source)
               (Structure.tuples d x_symbol)))

let count_equals_value p xs =
  let d = valuation_db xs in
  let counted = Eval.count_ucq (ucq_of_polynomial p) d in
  let expected =
    List.fold_left
      (fun acc (c, m) ->
        Nat.add acc (Nat.mul_int (Nat.of_int (Monomial.eval (fun i -> xs.(i - 1)) m)) c))
      Nat.zero (Polynomial.terms p)
  in
  Nat.equal counted expected

let reduce q =
  let q_squared = Polynomial.square q in
  let qpos, qneg = Polynomial.split_signs q_squared in
  let p1 = Polynomial.add qneg Polynomial.one in
  let p2 = qpos in
  (ucq_of_polynomial p1, ucq_of_polynomial p2)

let violation_db q ~zero =
  let n = Stdlib.max (Polynomial.max_var q) (Array.length zero) in
  let padded = Array.init n (fun i -> if i < Array.length zero then zero.(i) else 0) in
  valuation_db padded

let counts_on (small, big) d = (Eval.count_ucq small d, Eval.count_ucq big d)
