(** Multivariate polynomials with integer coefficients — the instances of
    Hilbert's 10th problem (Theorem 6) and the intermediate objects of the
    Appendix B pipeline. *)

type t

val zero : t
val one : t
val const : int -> t
val var : int -> t
val monomial : int -> Monomial.t -> t

val of_list : (int * Monomial.t) list -> t
(** Sums repeated monomials; drops zero coefficients. *)

val terms : t -> (int * Monomial.t) list
(** Coefficient–monomial pairs, monomials ascending, no zero
    coefficients. *)

val coeff : t -> Monomial.t -> int

val is_zero : t -> bool
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val square : t -> t
val scale : int -> t -> t
val pow : t -> int -> t

val degree : t -> int
(** Maximal monomial degree; [degree zero = 0]. *)

val max_var : t -> int
val num_terms : t -> int

val monomials : t -> Monomial.t list

val eval : (int -> int) -> t -> int
(** Exact evaluation at a valuation into ℕ; machine-integer arithmetic
    (the library's instances are small). *)

val is_nonneg : t -> bool
(** All coefficients ≥ 0 — required for [P_s] and [P_b] of Lemma 11. *)

val split_signs : t -> t * t
(** [(Q'₊, Q'₋)]: the positive part and the negated negative part, both
    with natural coefficients, such that the polynomial equals
    [Q'₊ − Q'₋] (Appendix B.2). *)

val rename_vars : (int -> int) -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
