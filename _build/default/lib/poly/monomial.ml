type t = int list (* sorted ascending, with multiplicity *)

let one : t = []

let var i =
  if i < 1 then invalid_arg "Monomial.var: index must be >= 1";
  [ i ]

let of_list l =
  List.iter (fun i -> if i < 1 then invalid_arg "Monomial.of_list: index must be >= 1") l;
  List.sort Stdlib.compare l

let to_list t = t
let degree = List.length
let mul a b = List.merge Stdlib.compare a b

let pow m k =
  if k < 0 then invalid_arg "Monomial.pow: negative";
  let rec go acc k = if k = 0 then acc else go (mul acc m) (k - 1) in
  go one k

let vars t = List.sort_uniq Stdlib.compare t
let max_var t = List.fold_left Stdlib.max 0 t

let eval valuation t =
  List.fold_left
    (fun acc i ->
      let v = valuation i in
      if v < 0 then invalid_arg "Monomial.eval: negative value";
      acc * v)
    1 t

let compare = List.compare Stdlib.compare
let equal a b = compare a b = 0

let pp fmt t =
  if t = [] then Format.pp_print_string fmt "1"
  else begin
    let grouped =
      List.fold_left
        (fun acc i ->
          match acc with (j, k) :: rest when j = i -> (j, k + 1) :: rest | _ -> (i, 1) :: acc)
        [] t
      |> List.rev
    in
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.pp_print_string f "·")
      (fun f (i, k) ->
        if k = 1 then Format.fprintf f "x%d" i else Format.fprintf f "x%d^%d" i k)
      fmt grouped
  end

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
