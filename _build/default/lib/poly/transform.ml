type pipeline = {
  input : Polynomial.t;
  q_squared : Polynomial.t;
  p1 : Polynomial.t;
  p2 : Polynomial.t;
  p1' : Polynomial.t;
  p2' : Polynomial.t;
  instance : Lemma11.t;
}

let run q0 =
  begin
    (* variables of the input become ξ₂…ξ_n; ξ₁ is reserved.  A constant
       input is degenerate but still reduces soundly: the produced instance
       is violated iff the constant is zero. *)
    let q = Polynomial.rename_vars (fun i -> i + 1) q0 in
    let n_vars = Stdlib.max 1 (Polynomial.max_var q) in
    let q_squared = Polynomial.square q in
    let qpos, qneg = Polynomial.split_signs q_squared in
    let p1 = Polynomial.add qneg Polynomial.one in
    let p2 = qpos in
    (* the common monomial set T and the completion polynomial P *)
    let t_set =
      List.sort_uniq Monomial.compare (Polynomial.monomials p1 @ Polynomial.monomials p2)
    in
    let p = Polynomial.of_list (List.map (fun m -> (1, m)) t_set) in
    let p1' = Polynomial.add p1 p and p2' = Polynomial.add p2 p in
    (* homogenise: every monomial is padded with ξ₁ up to degree d *)
    let d = 1 + List.fold_left (fun acc m -> Stdlib.max acc (Monomial.degree m)) 0 t_set in
    let positional m =
      let body = Monomial.to_list m in
      Array.of_list (List.init (d - Monomial.degree m) (fun _ -> 1) @ body)
    in
    let monomials = Array.of_list (List.map positional t_set) in
    let cs = Array.of_list (List.map (Polynomial.coeff p1') t_set) in
    let cb_base = Array.of_list (List.map (Polynomial.coeff p2') t_set) in
    let c' = Array.fold_left Stdlib.max 1 cs in
    let cb = Array.map (fun cbi -> c' * cbi) cb_base in
    let instance =
      Lemma11.make_exn ~c:c' ~n_vars ~monomials ~cs ~cb
    in
    { input = q; q_squared; p1; p2; p1'; p2'; instance }
  end

let reduce q = (run q).instance

let lift_zero z = Array.append [| 1 |] z
let project_valuation xs = Array.sub xs 1 (Array.length xs - 1)
