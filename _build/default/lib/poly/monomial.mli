(** Monomials of multivariate polynomials, as multisets of variable
    indices.  Variables are positive integers ([x₁] is [1]).  The constant
    monomial is the empty multiset. *)

type t

val one : t
(** The constant monomial. *)

val var : int -> t
(** Raises [Invalid_argument] on indices < 1. *)

val of_list : int list -> t
(** Multiset from a list of variable indices (order irrelevant). *)

val to_list : t -> int list
(** Sorted ascending, with multiplicity. *)

val degree : t -> int
val mul : t -> t -> t
val pow : t -> int -> t

val vars : t -> int list
(** Distinct variables, ascending. *)

val max_var : t -> int
(** 0 for the constant monomial. *)

val eval : (int -> int) -> t -> int
(** Product of the variable values; raises [Invalid_argument] when a value
    is negative (valuations range over ℕ). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
