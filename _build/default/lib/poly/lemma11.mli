(** Instances of the undecidable inequality problem of Lemma 11.

    An instance is a triple [(c, P_s, P_b)] where [P_s = Σ_m c_{s,m}·T_m]
    and [P_b = Σ_m c_{b,m}·T_m] share the same monomials [T_1 … T_m], all
    of degree exactly [d], each starting with the variable [x₁], and
    [1 ≤ c_{s,m} ≤ c_{b,m}] for every [m].  The undecidable question is
    whether [c·P_s(Ξ) ≤ Ξ(x₁)^d·P_b(Ξ)] for every valuation
    [Ξ : {x₁…x_n} → ℕ].

    Monomials are stored {e positionally} (an array of variable indices of
    length [d]) because the reduction of Section 4 needs the relation
    [𝒫(n,d,m)] — "x_n is the d-th variable of T_m" (Section 4.4). *)

open Bagcq_bignum

type t = private {
  c : int;  (** the multiplicative constant, ≥ 2 *)
  n_vars : int;  (** n — variables are 1…n, with x₁ distinguished *)
  degree : int;  (** d ≥ 1 *)
  monomials : int array array;  (** m rows, each of length [degree] *)
  cs : int array;  (** c_{s,m} *)
  cb : int array;  (** c_{b,m} *)
}

val make :
  c:int ->
  n_vars:int ->
  monomials:int array array ->
  cs:int array ->
  cb:int array ->
  (t, string) result
(** Checks every side condition of Lemma 11. *)

val make_exn :
  c:int -> n_vars:int -> monomials:int array array -> cs:int array -> cb:int array -> t

val num_monomials : t -> int

val occurrences : t -> (int * int * int) list
(** The relation [𝒫 ⊆ {1…n}×{1…d}×{1…m}]: [(n,d,m)] ∈ 𝒫 iff [x_n] is the
    [d]-th variable of [T_m].  One entry per position, so a variable
    occurring twice in a monomial appears with two different [d]s. *)

val p_s : t -> Polynomial.t
val p_b : t -> Polynomial.t

val eval_s : t -> int array -> Nat.t
(** [P_s(Ξ)]; the valuation array has length [n_vars], entry [i] giving
    [Ξ(x_{i+1})] (must be ≥ 0). *)

val eval_b : t -> int array -> Nat.t

val rhs : t -> int array -> Nat.t
(** [Ξ(x₁)^d · P_b(Ξ)]. *)

val holds_at : t -> int array -> bool
(** [c·P_s(Ξ) ≤ Ξ(x₁)^d·P_b(Ξ)] at one valuation. *)

val violation_search : t -> max:int -> int array option
(** Exhaustive grid search over valuations with entries in [0…max] for a
    valuation where the inequality fails.  The problem is undecidable in
    general; on instances produced from a Diophantine equation with a known
    zero this finds the violation the theory predicts. *)

val pp : Format.formatter -> t -> unit
