(** The Appendix B pipeline: from an instance of Hilbert's 10th problem to
    an instance of the Lemma 11 inequality problem.

    Given a polynomial [Q] with integer coefficients over variables
    [ξ₂…ξ_n] (the input's variables are renumbered from 1-based), the
    pipeline computes
    - [Q' = Q²] and its sign split [Q' = Q'₊ − Q'₋] (B.2),
    - [P₁ = Q'₋ + 1], [P₂ = Q'₊] — so that [Q(Ξ) = 0 ⟺ P₁(Ξ) > P₂(Ξ)]
      (Lemma 25),
    - common monomials: [P₁' = P₁ + P], [P₂' = P₂ + P] with
      [P = Σ_{t∈T} t] (B.3),
    - homogenisation by the fresh variable [ξ₁]: degree [d = 1 + max dᵢ],
      [tᵢ' = ξ₁^{d−dᵢ}·tᵢ] (B.4),
    - coefficient domination: [c' = max coefficient of P₁''],
      [P_s = P₁''], [P_b = c'·P₂''] (B.5).

    Lemma 29: [Q] has a zero over ℕ iff the produced instance has a
    violating valuation. *)

type pipeline = {
  input : Polynomial.t;  (** renamed input — variables 2…n *)
  q_squared : Polynomial.t;
  p1 : Polynomial.t;
  p2 : Polynomial.t;
  p1' : Polynomial.t;
  p2' : Polynomial.t;
  instance : Lemma11.t;
}

val run : Polynomial.t -> pipeline
(** Total on all inputs; a constant [Q] is degenerate but reduces soundly
    (the instance is violated iff the constant is zero). *)

val reduce : Polynomial.t -> Lemma11.t
(** [instance ∘ run]. *)

val lift_zero : int array -> int array
(** [lift_zero z] turns a zero [z] of the input [Q] (indexed by the
    original 1-based variables) into the violating valuation
    [Ξ' = (1, z)] of the produced instance (Lemma 29, first direction). *)

val project_valuation : int array -> int array
(** The other direction: drop [ξ₁] from an instance valuation to get a
    valuation of the input's variables. *)
