(** A small library of Diophantine equations — the decidable instances on
    which the (in general undecidable) reductions are exercised end to end.

    Each value is a polynomial [Q]; the question of Hilbert's 10th problem
    (Theorem 6 form) is whether [Q(Ξ) ≠ 0] for {e every} valuation into ℕ.
    "Solvable" below means the equation [Q = 0] has a solution over ℕ. *)

val linear_solvable : Polynomial.t
(** [x₁ − 2]: zero at [x₁ = 2]. *)

val linear_unsolvable : Polynomial.t
(** [x₁ + 1]: positive on all of ℕ. *)

val square_plus_one : Polynomial.t
(** [x₁² + 1]: classic unsolvable instance. *)

val difference_square : Polynomial.t
(** [x₁² − x₂]: zeros at [(k, k²)]. *)

val pell : Polynomial.t
(** [x₁² − 2x₂² − 1]: the Pell equation, smallest non-trivial zero
    [(3, 2)]. *)

val pythagoras : Polynomial.t
(** [x₁² + x₂² − x₃²]: zeros at [(0,0,0)], [(3,4,5)], …. *)

val markov_like : Polynomial.t
(** [x₁² + x₂² + x₃² − 3·x₁·x₂·x₃]: the Markov equation, zero at
    [(1,1,1)]. *)

val sum_of_squares : Polynomial.t
(** [x₁² + x₂²]: only zero is [(0,0)] — solvable, but exactly once. *)

val all_named : (string * Polynomial.t * [ `Solvable of int array | `Unsolvable ]) list
(** Every instance above with its name and ground truth (a witness zero for
    the solvable ones). *)

val zero_search : Polynomial.t -> bound:int -> int array option
(** Exhaustive grid search for a zero with entries in [0…bound]. *)

val is_zero_at : Polynomial.t -> int array -> bool
(** [Q(z) = 0] with [z] indexed by variable (entry [i] = value of
    [x_{i+1}]). *)
