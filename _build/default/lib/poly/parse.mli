(** Concrete syntax for polynomials, used by the CLI:

    {v
      poly   ::= term (('+' | '-') term)*       leading '-' allowed
      term   ::= factor ('*'? factor)*           juxtaposition multiplies
      factor ::= INT | VAR ('^' INT)? | '(' poly ')'
      VAR    ::= 'x' INT     (x1, x2, …)
    v}

    Examples: ["x1^2 - 2x2^2 - 1"], ["(x1 + x2)*(x1 - x2)"].
    Exponents are capped at 64 (larger ones are surely typos and would
    stall the caller on a multinomial blow-up). *)

val parse : string -> (Polynomial.t, string) result
val parse_exn : string -> Polynomial.t
