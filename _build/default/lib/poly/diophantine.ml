let x i = Polynomial.var i
let ( + ) = Polynomial.add
let ( - ) = Polynomial.sub
let ( * ) = Polynomial.mul
let k = Polynomial.const
let sq p = Polynomial.square p

let linear_solvable = x 1 - k 2
let linear_unsolvable = x 1 + k 1
let square_plus_one = sq (x 1) + k 1
let difference_square = sq (x 1) - x 2
let pell = sq (x 1) - (k 2 * sq (x 2)) - k 1
let pythagoras = sq (x 1) + sq (x 2) - sq (x 3)
let markov_like = sq (x 1) + sq (x 2) + sq (x 3) - (k 3 * (x 1 * x 2 * x 3))
let sum_of_squares = sq (x 1) + sq (x 2)

let all_named =
  [
    ("x - 2", linear_solvable, `Solvable [| 2 |]);
    ("x + 1", linear_unsolvable, `Unsolvable);
    ("x^2 + 1", square_plus_one, `Unsolvable);
    ("x^2 - y", difference_square, `Solvable [| 3; 9 |]);
    ("pell: x^2 - 2y^2 - 1", pell, `Solvable [| 3; 2 |]);
    ("pythagoras: x^2 + y^2 - z^2", pythagoras, `Solvable [| 3; 4; 5 |]);
    ("markov: x^2 + y^2 + z^2 - 3xyz", markov_like, `Solvable [| 1; 1; 1 |]);
    ("x^2 + y^2", sum_of_squares, `Solvable [| 0; 0 |]);
  ]

let is_zero_at q z = Polynomial.eval (fun i -> z.(Stdlib.( - ) i 1)) q = 0

let zero_search q ~bound =
  let n = Stdlib.max 1 (Polynomial.max_var q) in
  let z = Array.make n 0 in
  let rec go i =
    if i = n then if is_zero_at q z then Some (Array.copy z) else None
    else begin
      let rec try_value v =
        if Stdlib.( > ) v bound then None
        else begin
          z.(i) <- v;
          match go (Stdlib.( + ) i 1) with
          | Some w -> Some w
          | None -> try_value (Stdlib.( + ) v 1)
        end
      in
      try_value 0
    end
  in
  go 0
