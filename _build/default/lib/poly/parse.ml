type token =
  | Int of int
  | Var of int
  | Plus
  | Minus
  | Star
  | Caret
  | Lparen
  | Rparen

exception Parse_error of string

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '+' -> go (i + 1) (Plus :: acc)
      | '-' -> go (i + 1) (Minus :: acc)
      | '*' -> go (i + 1) (Star :: acc)
      (* the middle dot the printer uses, as the UTF-8 pair C2 B7 *)
      | '\xc2' when i + 1 < n && s.[i + 1] = '\xb7' -> go (i + 2) (Star :: acc)
      | '^' -> go (i + 1) (Caret :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | c when c >= '0' && c <= '9' ->
          let j = ref i in
          while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          go !j (Int (int_of_string (String.sub s i (!j - i))) :: acc)
      | ('x' | 'X' | 'y' | 'z') as v ->
          (* x1, x2, … — and as a courtesy, bare x/y/z mean x1/x2/x3 *)
          let j = ref (i + 1) in
          while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          let index =
            if !j > i + 1 then int_of_string (String.sub s (i + 1) (!j - i - 1))
            else begin
              match v with 'x' | 'X' -> 1 | 'y' -> 2 | _ -> 3
            end
          in
          if index < 1 then raise (Parse_error "variable indices start at 1");
          go !j (Var index :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
    end
  in
  go 0 []

(* recursive descent; returns (value, remaining tokens) *)
let rec parse_poly tokens =
  let first, rest =
    match tokens with
    | Minus :: rest ->
        let t, rest = parse_term rest in
        (Polynomial.neg t, rest)
    | Plus :: rest -> parse_term rest
    | _ -> parse_term tokens
  in
  let rec loop acc = function
    | Plus :: rest ->
        let t, rest = parse_term rest in
        loop (Polynomial.add acc t) rest
    | Minus :: rest ->
        let t, rest = parse_term rest in
        loop (Polynomial.sub acc t) rest
    | rest -> (acc, rest)
  in
  loop first rest

and parse_term tokens =
  let first, rest = parse_factor tokens in
  let rec loop acc = function
    | Star :: rest ->
        let f, rest = parse_factor rest in
        loop (Polynomial.mul acc f) rest
    | ((Int _ | Var _ | Lparen) :: _) as rest ->
        (* juxtaposition: 2x1, x1x2, 3(x+1) *)
        let f, rest = parse_factor rest in
        loop (Polynomial.mul acc f) rest
    | rest -> (acc, rest)
  in
  loop first rest

and parse_factor tokens =
  let base, rest =
    match tokens with
    | Int k :: rest -> (Polynomial.const k, rest)
    | Var i :: rest -> (Polynomial.var i, rest)
    | Lparen :: rest -> (
        let p, rest = parse_poly rest in
        match rest with
        | Rparen :: rest -> (p, rest)
        | _ -> raise (Parse_error "missing closing parenthesis"))
    | _ -> raise (Parse_error "expected a number, variable or parenthesis")
  in
  match rest with
  | Caret :: Int e :: rest ->
      if e < 0 then raise (Parse_error "negative exponent");
      (* polynomial powers grow multinomially; anything beyond this bound
         is surely a typo and would stall the parser's caller *)
      if e > 64 then raise (Parse_error "exponent too large (max 64)");
      (Polynomial.pow base e, rest)
  | Caret :: _ -> raise (Parse_error "expected an exponent after '^'")
  | rest -> (base, rest)

let parse s =
  try
    let tokens = tokenize s in
    if tokens = [] then Error "empty polynomial"
    else begin
      let p, rest = parse_poly tokens in
      if rest <> [] then Error "trailing tokens" else Ok p
    end
  with Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok p -> p | Error msg -> invalid_arg ("Poly.Parse: " ^ msg)
