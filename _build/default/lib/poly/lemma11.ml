open Bagcq_bignum

type t = {
  c : int;
  n_vars : int;
  degree : int;
  monomials : int array array;
  cs : int array;
  cb : int array;
}

let make ~c ~n_vars ~monomials ~cs ~cb =
  let m = Array.length monomials in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if c < 2 then fail "c must be >= 2 (got %d)" c
  else if n_vars < 1 then fail "need at least one variable"
  else if m = 0 then fail "need at least one monomial"
  else if Array.length cs <> m || Array.length cb <> m then
    fail "coefficient arrays must match the number of monomials"
  else begin
    let d = Array.length monomials.(0) in
    if d < 1 then fail "monomials must have degree >= 1"
    else begin
      let problem = ref None in
      Array.iteri
        (fun i mono ->
          if !problem = None then begin
            if Array.length mono <> d then
              problem := Some (Printf.sprintf "monomial %d has degree %d, expected %d" (i + 1) (Array.length mono) d)
            else if mono.(0) <> 1 then
              problem := Some (Printf.sprintf "monomial %d does not start with x1" (i + 1))
            else
              Array.iter
                (fun v ->
                  if (v < 1 || v > n_vars) && !problem = None then
                    problem := Some (Printf.sprintf "monomial %d mentions x%d, out of range" (i + 1) v))
                mono
          end)
        monomials;
      Array.iteri
        (fun i csi ->
          if !problem = None && not (1 <= csi && csi <= cb.(i)) then
            problem :=
              Some
                (Printf.sprintf "coefficients for monomial %d violate 1 <= c_s <= c_b (%d, %d)"
                   (i + 1) csi cb.(i)))
        cs;
      match !problem with
      | Some msg -> Error msg
      | None -> Ok { c; n_vars; degree = d; monomials; cs; cb }
    end
  end

let make_exn ~c ~n_vars ~monomials ~cs ~cb =
  match make ~c ~n_vars ~monomials ~cs ~cb with
  | Ok t -> t
  | Error msg -> invalid_arg ("Lemma11.make: " ^ msg)

let num_monomials t = Array.length t.monomials

let occurrences t =
  let acc = ref [] in
  Array.iteri
    (fun mi mono ->
      Array.iteri (fun di v -> acc := (v, di + 1, mi + 1) :: !acc) mono)
    t.monomials;
  List.rev !acc

let poly_of coeffs t =
  Array.to_list t.monomials
  |> List.mapi (fun i mono -> (coeffs.(i), Monomial.of_list (Array.to_list mono)))
  |> Polynomial.of_list

let p_s t = poly_of t.cs t
let p_b t = poly_of t.cb t

let eval_monomial mono (xs : int array) =
  Array.fold_left
    (fun acc v ->
      if xs.(v - 1) < 0 then invalid_arg "Lemma11: negative valuation";
      Nat.mul_int acc xs.(v - 1))
    Nat.one mono

let eval_with coeffs t xs =
  if Array.length xs <> t.n_vars then invalid_arg "Lemma11: valuation length mismatch";
  let acc = ref Nat.zero in
  Array.iteri
    (fun i mono -> acc := Nat.add !acc (Nat.mul_int (eval_monomial mono xs) coeffs.(i)))
    t.monomials;
  !acc

let eval_s t xs = eval_with t.cs t xs
let eval_b t xs = eval_with t.cb t xs

let rhs t xs = Nat.mul (Nat.pow (Nat.of_int xs.(0)) t.degree) (eval_b t xs)

let holds_at t xs = Nat.compare (Nat.mul_int (eval_s t xs) t.c) (rhs t xs) <= 0

let violation_search t ~max =
  let xs = Array.make t.n_vars 0 in
  let rec go i =
    if i = t.n_vars then if holds_at t xs then None else Some (Array.copy xs)
    else begin
      let rec try_value v =
        if v > max then None
        else begin
          xs.(i) <- v;
          match go (i + 1) with Some w -> Some w | None -> try_value (v + 1)
        end
      in
      try_value 0
    end
  in
  go 0

let pp fmt t =
  Format.fprintf fmt "@[<v>c = %d@ P_s = %a@ P_b = %a@ (d = %d, n = %d)@]" t.c Polynomial.pp
    (p_s t) Polynomial.pp (p_b t) t.degree t.n_vars
