type t = int Monomial.Map.t (* no zero coefficients stored *)

let normalize m = Monomial.Map.filter (fun _ c -> c <> 0) m
let zero : t = Monomial.Map.empty
let const c = normalize (Monomial.Map.singleton Monomial.one c)
let one = const 1
let monomial c m = normalize (Monomial.Map.singleton m c)
let var i = monomial 1 (Monomial.var i)

let add a b =
  normalize
    (Monomial.Map.union (fun _ c1 c2 -> Some (c1 + c2)) a b)

let of_list l = List.fold_left (fun acc (c, m) -> add acc (monomial c m)) zero l

let terms p = Monomial.Map.bindings p |> List.map (fun (m, c) -> (c, m))
let coeff p m = Option.value ~default:0 (Monomial.Map.find_opt m p)
let is_zero p = Monomial.Map.is_empty p
let equal = Monomial.Map.equal Int.equal
let neg p = Monomial.Map.map (fun c -> -c) p
let sub a b = add a (neg b)
let scale k p = if k = 0 then zero else Monomial.Map.map (fun c -> k * c) p

let mul a b =
  Monomial.Map.fold
    (fun ma ca acc ->
      Monomial.Map.fold
        (fun mb cb acc -> add acc (monomial (ca * cb) (Monomial.mul ma mb)))
        b acc)
    a zero

let square p = mul p p

let pow p k =
  if k < 0 then invalid_arg "Polynomial.pow: negative";
  let rec go acc k = if k = 0 then acc else go (mul acc p) (k - 1) in
  go one k

let degree p = Monomial.Map.fold (fun m _ acc -> Stdlib.max acc (Monomial.degree m)) p 0
let max_var p = Monomial.Map.fold (fun m _ acc -> Stdlib.max acc (Monomial.max_var m)) p 0
let num_terms p = Monomial.Map.cardinal p
let monomials p = List.map fst (Monomial.Map.bindings p)

let eval valuation p =
  Monomial.Map.fold (fun m c acc -> acc + (c * Monomial.eval valuation m)) p 0

let is_nonneg p = Monomial.Map.for_all (fun _ c -> c >= 0) p

let split_signs p =
  let pos = Monomial.Map.filter (fun _ c -> c > 0) p in
  let negs = Monomial.Map.filter_map (fun _ c -> if c < 0 then Some (-c) else None) p in
  (pos, negs)

let rename_vars f p =
  Monomial.Map.fold
    (fun m c acc ->
      add acc (monomial c (Monomial.of_list (List.map f (Monomial.to_list m)))))
    p zero

let pp fmt p =
  if is_zero p then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    Monomial.Map.iter
      (fun m c ->
        let sign = if c < 0 then "- " else if !first then "" else "+ " in
        let c' = abs c in
        first := false;
        if Monomial.equal m Monomial.one then Format.fprintf fmt "%s%d " sign c'
        else if c' = 1 then Format.fprintf fmt "%s%a " sign Monomial.pp m
        else Format.fprintf fmt "%s%d·%a " sign c' Monomial.pp m)
      p
  end

let to_string p = String.trim (Format.asprintf "%a" pp p)
