lib/poly/transform.mli: Lemma11 Polynomial
