lib/poly/lemma11.mli: Bagcq_bignum Format Nat Polynomial
