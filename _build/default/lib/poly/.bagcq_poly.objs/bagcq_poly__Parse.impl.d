lib/poly/parse.ml: List Polynomial Printf String
