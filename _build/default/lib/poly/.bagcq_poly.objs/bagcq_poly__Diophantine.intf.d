lib/poly/diophantine.mli: Polynomial
