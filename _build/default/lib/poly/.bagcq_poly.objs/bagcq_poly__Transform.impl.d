lib/poly/transform.ml: Array Lemma11 List Monomial Polynomial Stdlib
