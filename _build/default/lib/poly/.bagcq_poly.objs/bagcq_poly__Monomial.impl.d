lib/poly/monomial.ml: Format List Map Stdlib
