lib/poly/parse.mli: Polynomial
