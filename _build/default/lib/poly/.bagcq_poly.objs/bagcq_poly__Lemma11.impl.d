lib/poly/lemma11.ml: Array Bagcq_bignum Format List Monomial Nat Polynomial Printf
