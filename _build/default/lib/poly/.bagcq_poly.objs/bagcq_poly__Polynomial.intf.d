lib/poly/polynomial.mli: Format Monomial
