lib/poly/diophantine.ml: Array Polynomial Stdlib
