lib/poly/polynomial.ml: Format Int List Monomial Option Stdlib String
