lib/poly/monomial.mli: Format Map
