(** Non-negative rational numbers with machine-integer numerator and
    denominator, always in lowest terms.

    The paper's multiplier ratios (Definition 3) are small: [(p+1)²/2p]
    (Lemma 5), [(m−1)/m] (Lemma 10) and their products, with [p = 2c−1] and
    [m = p+1].  Machine integers are ample for the components; the *counts*
    the ratios are compared against are {!Nat.t}, and the comparisons are
    performed by exact cross-multiplication. *)

type t

val make : int -> int -> t
(** [make num den] is [num/den] in lowest terms.
    Raises [Invalid_argument] if [num < 0] or [den ≤ 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val mul : t -> t -> t
(** Raise [Failure] on intermediate overflow (checked). *)

val inv : t -> t
(** Raises [Division_by_zero] on [inv zero]. *)

val is_integer : t -> bool
val to_int_exn : t -> int
(** Raises [Invalid_argument] when the value is not an integer. *)

val scale_nat : t -> Nat.t -> Nat.t * int
(** [scale_nat q n] is [(num·n, den)]: the exact value [q·n] as an integer
    pair, ready for cross-multiplied comparisons. *)

val le_scaled : t -> Nat.t -> Nat.t -> bool
(** [le_scaled q a b] is [q·a ≤ b], exactly: [num·a ≤ den·b]. *)

val eq_scaled : t -> Nat.t -> Nat.t -> bool
(** [eq_scaled q a b] is [q·a = b], exactly. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
