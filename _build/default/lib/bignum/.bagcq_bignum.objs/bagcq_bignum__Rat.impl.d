lib/bignum/rat.ml: Format Nat Printf Stdlib
