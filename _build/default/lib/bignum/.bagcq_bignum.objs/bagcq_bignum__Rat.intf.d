lib/bignum/rat.mli: Format Nat
