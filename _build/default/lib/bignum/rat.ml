type t = { num : int; den : int }

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let make num den =
  if num < 0 then invalid_arg "Rat.make: negative numerator";
  if den <= 0 then invalid_arg "Rat.make: non-positive denominator";
  if num = 0 then { num = 0; den = 1 }
  else begin
    let g = gcd_int num den in
    { num = num / g; den = den / g }
  end

let of_int n = make n 1
let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let num q = q.num
let den q = q.den
let equal a b = a.num = b.num && a.den = b.den

(* a.num/a.den ? b.num/b.den  ⇔  a.num·b.den ? b.num·a.den; components stay
   well under 2^31 in this library so the products cannot overflow. *)
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)

let checked_mul_int a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a then failwith "Rat: integer overflow";
    p
  end

let add a b =
  make
    (checked_mul_int a.num b.den + checked_mul_int b.num a.den)
    (checked_mul_int a.den b.den)

let mul a b = make (checked_mul_int a.num b.num) (checked_mul_int a.den b.den)

let inv q = if q.num = 0 then raise Division_by_zero else { num = q.den; den = q.num }

let is_integer q = q.den = 1

let to_int_exn q =
  if q.den <> 1 then invalid_arg "Rat.to_int_exn: not an integer";
  q.num

let scale_nat q n = (Nat.mul_int n q.num, q.den)
let le_scaled q a b = Nat.compare (Nat.mul_int a q.num) (Nat.mul_int b q.den) <= 0
let eq_scaled q a b = Nat.equal (Nat.mul_int a q.num) (Nat.mul_int b q.den)

let to_string q = if q.den = 1 then string_of_int q.num else Printf.sprintf "%d/%d" q.num q.den
let pp fmt q = Format.pp_print_string fmt (to_string q)
